"""Hierarchical task-based execution, Parthenon-style (Section II-C).

Parthenon organizes each timestep stage as task lists — one per MeshBlock
(or block pack) — whose tasks carry explicit dependencies ("enabling
fine-grained parallelism with controlled task granularity").  This module
implements that model: :class:`Task` nodes with dependency edges,
:class:`TaskList` per execution unit, and a :class:`TaskRegion` that
round-robins across lists the way Parthenon's driver interleaves block work
with communication completion.

The driver uses it to sequence one stage's work; the scheduler records how
many task-queue operations occurred so the platform model can charge the
task-management overhead the paper attributes to the host.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set


class TaskStatus(enum.Enum):
    """Outcome of one task invocation."""

    COMPLETE = "complete"
    INCOMPLETE = "incomplete"  # try again later (e.g. waiting on messages)
    FAIL = "fail"


@dataclass(frozen=True)
class TaskID:
    """Opaque handle used to express dependencies."""

    index: int
    list_id: int

    def __and__(self, other: "TaskID") -> "TaskIDSet":
        return TaskIDSet(frozenset({self, other}))


@dataclass(frozen=True)
class TaskIDSet:
    """Conjunction of task dependencies."""

    ids: frozenset

    def __and__(self, other) -> "TaskIDSet":
        if isinstance(other, TaskID):
            return TaskIDSet(self.ids | {other})
        return TaskIDSet(self.ids | other.ids)


NONE_ID = TaskID(index=-1, list_id=-1)


@dataclass
class Task:
    """One unit of work with dependencies inside a TaskList."""

    tid: TaskID
    fn: Callable[[], TaskStatus]
    dependencies: Set[TaskID]
    label: str = ""
    status: Optional[TaskStatus] = None
    attempts: int = 0

    def ready(self, completed: Set[TaskID]) -> bool:
        return self.status is None and self.dependencies <= completed


class TaskListError(RuntimeError):
    """Raised on dependency cycles or failing tasks."""


class TaskList:
    """An ordered collection of dependent tasks for one execution unit."""

    _ids = itertools.count()

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.list_id = next(self._ids)
        self.tasks: List[Task] = []

    def add_task(
        self,
        fn: Callable[[], TaskStatus],
        dependency=NONE_ID,
        label: str = "",
    ) -> TaskID:
        """Append a task; ``dependency`` is a TaskID, TaskIDSet or NONE_ID."""
        if isinstance(dependency, TaskIDSet):
            deps = set(dependency.ids)
        elif dependency == NONE_ID:
            deps = set()
        else:
            deps = {dependency}
        tid = TaskID(index=len(self.tasks), list_id=self.list_id)
        self.tasks.append(
            Task(tid=tid, fn=fn, dependencies=deps, label=label)
        )
        return tid

    def __len__(self) -> int:
        return len(self.tasks)


@dataclass
class SchedulerStats:
    """Queue activity, charged by the platform's task-overhead model."""

    tasks_completed: int = 0
    tasks_retried: int = 0
    queue_polls: int = 0


class TaskRegion:
    """Executes several TaskLists to completion, interleaved.

    Mirrors Parthenon's driver loop: repeatedly sweep the lists, launching
    every ready task; a task returning ``INCOMPLETE`` (typically a
    communication-completion check) stays queued and is retried on the next
    sweep.  Raises on failure or when no progress is possible (a dependency
    cycle or a permanently incomplete task).
    """

    def __init__(self, lists: Sequence[TaskList], max_sweeps: int = 10_000):
        self.lists = list(lists)
        self.max_sweeps = max_sweeps
        self.stats = SchedulerStats()

    def execute(self) -> SchedulerStats:
        completed: Set[TaskID] = set()
        pending = sum(len(tl) for tl in self.lists)
        sweeps = 0
        while pending > 0:
            sweeps += 1
            if sweeps > self.max_sweeps:
                raise TaskListError(
                    f"no progress after {self.max_sweeps} sweeps: "
                    f"{pending} tasks stuck (cycle or dead wait?)"
                )
            progressed = False
            retried_any = False
            for tl in self.lists:
                for task in tl.tasks:
                    self.stats.queue_polls += 1
                    if not task.ready(completed):
                        continue
                    task.attempts += 1
                    status = task.fn()
                    if not isinstance(status, TaskStatus):
                        raise TaskListError(
                            f"task {task.label or task.tid} returned "
                            f"{status!r}, expected a TaskStatus"
                        )
                    if status is TaskStatus.COMPLETE:
                        task.status = status
                        completed.add(task.tid)
                        pending -= 1
                        progressed = True
                        self.stats.tasks_completed += 1
                    elif status is TaskStatus.INCOMPLETE:
                        retried_any = True
                        self.stats.tasks_retried += 1
                    else:
                        raise TaskListError(
                            f"task {task.label or task.tid} failed"
                        )
            if not progressed and not retried_any:
                raise TaskListError(
                    f"dependency cycle: {pending} tasks can never run"
                )
        return self.stats


def single_task_region(fns: Iterable[Callable[[], TaskStatus]]) -> SchedulerStats:
    """Convenience: run independent callables as one task list."""
    tl = TaskList("region")
    for fn in fns:
        tl.add_task(fn)
    return TaskRegion([tl]).execute()
