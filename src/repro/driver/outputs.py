"""Output writers: history files, mesh structure dumps, and restarts.

* :func:`write_history` emits an Athena/Parthenon-style ``.hst`` table of
  the MassHistory reductions.
* :func:`write_mesh_structure` dumps the block layout (location, level,
  rank, bounds) for inspection or plotting.
* :func:`save_restart` / :func:`load_restart` round-trip the full numeric
  state (tree + every block's fields) through an ``.npz`` archive, so long
  runs can resume — the role of Parthenon's ``REQUIRES_RESTART`` metadata.
"""

from __future__ import annotations

import os
import zipfile
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import __version__
from repro.mesh.block import FieldSpec
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh, MeshGeometry
from repro.solver.history import HistoryRow

PathLike = Union[str, Path]

#: Restart archive layout version.  Bump when keys change shape/meaning.
RESTART_SCHEMA_VERSION = 1


class RestartError(RuntimeError):
    """A restart/checkpoint archive is corrupt, truncated, or mismatched."""


def write_history(path: PathLike, rows: Sequence[HistoryRow]) -> None:
    """Write MassHistory rows as a .hst-style whitespace table."""
    if not rows:
        raise ValueError("no history rows to write")
    nscalars = len(rows[0].scalar_totals)
    nvel = len(rows[0].momentum_totals)
    headers = (
        ["cycle", "time"]
        + [f"total_q{j}" for j in range(nscalars)]
        + [f"total_mom{i}" for i in range(nvel)]
        + ["total_d", "max_speed"]
    )
    lines = ["# " + "  ".join(headers)]
    for r in rows:
        cells = (
            [str(r.cycle), f"{r.time:.10e}"]
            + [f"{q:.10e}" for q in r.scalar_totals]
            + [f"{m:.10e}" for m in r.momentum_totals]
            + [f"{r.total_d:.10e}", f"{r.max_speed:.10e}"]
        )
        lines.append("  ".join(cells))
    Path(path).write_text("\n".join(lines) + "\n")


def read_history(path: PathLike) -> List[List[float]]:
    """Read back a .hst table as rows of floats (cycle included)."""
    rows = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rows.append([float(tok) for tok in line.split()])
    return rows


def write_mesh_structure(path: PathLike, mesh: Mesh) -> None:
    """Dump block layout: gid, level, logical coords, rank, bounds."""
    lines = ["# gid level lx1 lx2 lx3 rank x1min x1max x2min x2max x3min x3max"]
    for blk in mesh.block_list:
        l = blk.lloc
        bounds = " ".join(
            f"{lo:.8f} {hi:.8f}" for lo, hi in blk.bounds
        )
        lines.append(
            f"{blk.gid} {l.level} {l.lx1} {l.lx2} {l.lx3} {blk.rank} {bounds}"
        )
    Path(path).write_text("\n".join(lines) + "\n")


def save_restart(
    path: PathLike, mesh: Mesh, cycle: int = 0, time: float = 0.0
) -> None:
    """Serialize the numeric mesh state into an .npz archive.

    The write is crash-consistent: data lands in a temp file that is
    fsync'ed and atomically renamed over ``path``, so a reader never
    observes a truncated archive — it sees either the old file or the
    new one.  The archive carries ``schema_version`` and ``code_version``
    keys so :func:`load_restart` can reject incompatible layouts.
    """
    if not mesh.allocate:
        raise ValueError("restart dumps require a numeric-mode mesh")
    geo = mesh.geometry
    payload = {
        "schema_version": np.array([RESTART_SCHEMA_VERSION], dtype=np.int64),
        "code_version": np.array([__version__]),
        "meta": np.array(
            [
                geo.ndim,
                geo.mesh_size[0],
                geo.block_size[0],
                geo.ng,
                geo.num_levels,
                cycle,
            ],
            dtype=np.int64,
        ),
        "time": np.array([time]),
        "field_names": np.array([s.name for s in mesh.field_specs]),
        "field_ncomp": np.array([s.ncomp for s in mesh.field_specs]),
        "locations": np.array(
            [
                (b.lloc.level, b.lloc.lx1, b.lloc.lx2, b.lloc.lx3, b.rank)
                for b in mesh.block_list
            ],
            dtype=np.int64,
        ),
    }
    for blk in mesh.block_list:
        for name, arr in blk.fields.items():
            payload[f"blk{blk.gid}/{name}"] = arr
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as f:
            np.savez_compressed(f, **payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def load_restart(
    path: PathLike, expected_geometry: Optional[MeshGeometry] = None
) -> Tuple[Mesh, int, float]:
    """Rebuild a numeric mesh from a restart archive.

    Returns ``(mesh, cycle, time)``.  The tree is reconstructed by refining
    down to each stored leaf, then data is copied in verbatim — after
    validating the archive: unreadable/truncated zips, unknown schema
    versions, geometry that disagrees with ``expected_geometry`` (the
    deck's), and block arrays whose shapes do not match the geometry all
    raise :class:`RestartError` instead of adopting bad state.
    """
    path = Path(path)
    if not path.is_file():
        raise RestartError(f"restart archive not found: {path}")
    try:
        handle = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise RestartError(
            f"restart archive {path} is corrupt or truncated: {exc}"
        ) from exc
    with handle as data:
        try:
            keys = set(data.files)
            required = {"meta", "time", "field_names", "field_ncomp",
                        "locations"}
            missing = required - keys
            if missing:
                raise RestartError(
                    f"restart archive {path} is missing keys: "
                    f"{', '.join(sorted(missing))}"
                )
            if "schema_version" in keys:
                stored_schema = int(data["schema_version"][0])
                if stored_schema != RESTART_SCHEMA_VERSION:
                    raise RestartError(
                        f"restart archive {path} has schema_version "
                        f"{stored_schema}; this build reads "
                        f"{RESTART_SCHEMA_VERSION}"
                    )
            ndim, mesh_size, block_size, ng, num_levels, cycle = (
                int(v) for v in data["meta"]
            )
            time = float(data["time"][0])
            specs = [
                FieldSpec(str(name), int(nc))
                for name, nc in zip(data["field_names"], data["field_ncomp"])
            ]
            geo = MeshGeometry(
                ndim=ndim,
                mesh_size=tuple(mesh_size if a < ndim else 1 for a in range(3)),
                block_size=tuple(
                    block_size if a < ndim else 1 for a in range(3)
                ),
                ng=ng,
                num_levels=num_levels,
            )
            if expected_geometry is not None and geo != expected_geometry:
                raise RestartError(
                    f"restart archive {path} was written for geometry {geo}, "
                    f"but the deck specifies {expected_geometry}"
                )
            mesh = Mesh(geo, field_specs=specs, allocate=True)
            # Stored in gid (Morton) order; keep that order for data mapping.
            stored = [
                (LogicalLocation(int(l), int(i), int(j), int(k)), int(rank))
                for l, i, j, k, rank in data["locations"]
            ]
            # Reconstruct the tree: refine ancestors until every stored leaf
            # exists, shallow leaves first so parents exist before children.
            for lloc, _ in sorted(stored, key=lambda t: t[0].level):
                while lloc not in mesh.tree.leaves:
                    probe = lloc
                    while (
                        probe.level > 0
                        and probe.parent() not in mesh.tree.leaves
                    ):
                        probe = probe.parent()
                    if probe.level == 0:
                        raise RestartError(
                            f"stored leaf {lloc} outside the tree"
                        )
                    mesh.remesh(refine=[probe.parent()], derefine=[])
            if len(mesh.block_list) != len(stored):
                raise RestartError(
                    f"restart mismatch: rebuilt {len(mesh.block_list)} "
                    f"blocks, archive has {len(stored)}"
                )
            for gid, (lloc, rank) in enumerate(stored):
                blk = mesh.block_at(lloc)
                blk.rank = rank
                for spec in specs:
                    key = f"blk{gid}/{spec.name}"
                    if key not in keys:
                        raise RestartError(
                            f"restart archive {path} is missing block "
                            f"array {key!r}"
                        )
                    arr = data[key]
                    dest = blk.fields[spec.name]
                    if arr.shape != dest.shape:
                        raise RestartError(
                            f"field {spec.name!r} of block {gid} has shape "
                            f"{arr.shape}, geometry expects {dest.shape}"
                        )
                    dest[...] = arr
        except RestartError:
            raise
        except (KeyError, zipfile.BadZipFile, OSError, ValueError) as exc:
            raise RestartError(
                f"restart archive {path} is corrupt: {exc}"
            ) from exc
    return mesh, cycle, time
