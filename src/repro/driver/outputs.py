"""Output writers: history files, mesh structure dumps, and restarts.

* :func:`write_history` emits an Athena/Parthenon-style ``.hst`` table of
  the MassHistory reductions.
* :func:`write_mesh_structure` dumps the block layout (location, level,
  rank, bounds) for inspection or plotting.
* :func:`save_restart` / :func:`load_restart` round-trip the full numeric
  state (tree + every block's fields) through an ``.npz`` archive, so long
  runs can resume — the role of Parthenon's ``REQUIRES_RESTART`` metadata.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.mesh.block import FieldSpec
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh, MeshGeometry
from repro.solver.history import HistoryRow

PathLike = Union[str, Path]


def write_history(path: PathLike, rows: Sequence[HistoryRow]) -> None:
    """Write MassHistory rows as a .hst-style whitespace table."""
    if not rows:
        raise ValueError("no history rows to write")
    nscalars = len(rows[0].scalar_totals)
    nvel = len(rows[0].momentum_totals)
    headers = (
        ["cycle", "time"]
        + [f"total_q{j}" for j in range(nscalars)]
        + [f"total_mom{i}" for i in range(nvel)]
        + ["total_d", "max_speed"]
    )
    lines = ["# " + "  ".join(headers)]
    for r in rows:
        cells = (
            [str(r.cycle), f"{r.time:.10e}"]
            + [f"{q:.10e}" for q in r.scalar_totals]
            + [f"{m:.10e}" for m in r.momentum_totals]
            + [f"{r.total_d:.10e}", f"{r.max_speed:.10e}"]
        )
        lines.append("  ".join(cells))
    Path(path).write_text("\n".join(lines) + "\n")


def read_history(path: PathLike) -> List[List[float]]:
    """Read back a .hst table as rows of floats (cycle included)."""
    rows = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rows.append([float(tok) for tok in line.split()])
    return rows


def write_mesh_structure(path: PathLike, mesh: Mesh) -> None:
    """Dump block layout: gid, level, logical coords, rank, bounds."""
    lines = ["# gid level lx1 lx2 lx3 rank x1min x1max x2min x2max x3min x3max"]
    for blk in mesh.block_list:
        l = blk.lloc
        bounds = " ".join(
            f"{lo:.8f} {hi:.8f}" for lo, hi in blk.bounds
        )
        lines.append(
            f"{blk.gid} {l.level} {l.lx1} {l.lx2} {l.lx3} {blk.rank} {bounds}"
        )
    Path(path).write_text("\n".join(lines) + "\n")


def save_restart(
    path: PathLike, mesh: Mesh, cycle: int = 0, time: float = 0.0
) -> None:
    """Serialize the numeric mesh state into an .npz archive."""
    if not mesh.allocate:
        raise ValueError("restart dumps require a numeric-mode mesh")
    geo = mesh.geometry
    payload = {
        "meta": np.array(
            [
                geo.ndim,
                geo.mesh_size[0],
                geo.block_size[0],
                geo.ng,
                geo.num_levels,
                cycle,
            ],
            dtype=np.int64,
        ),
        "time": np.array([time]),
        "field_names": np.array([s.name for s in mesh.field_specs]),
        "field_ncomp": np.array([s.ncomp for s in mesh.field_specs]),
        "locations": np.array(
            [
                (b.lloc.level, b.lloc.lx1, b.lloc.lx2, b.lloc.lx3, b.rank)
                for b in mesh.block_list
            ],
            dtype=np.int64,
        ),
    }
    for blk in mesh.block_list:
        for name, arr in blk.fields.items():
            payload[f"blk{blk.gid}/{name}"] = arr
    np.savez_compressed(Path(path), **payload)


def load_restart(path: PathLike) -> Tuple[Mesh, int, float]:
    """Rebuild a numeric mesh from a restart archive.

    Returns ``(mesh, cycle, time)``.  The tree is reconstructed by refining
    down to each stored leaf, then data is copied in verbatim.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        ndim, mesh_size, block_size, ng, num_levels, cycle = (
            int(v) for v in data["meta"]
        )
        time = float(data["time"][0])
        specs = [
            FieldSpec(str(name), int(nc))
            for name, nc in zip(data["field_names"], data["field_ncomp"])
        ]
        geo = MeshGeometry(
            ndim=ndim,
            mesh_size=tuple(mesh_size if a < ndim else 1 for a in range(3)),
            block_size=tuple(block_size if a < ndim else 1 for a in range(3)),
            ng=ng,
            num_levels=num_levels,
        )
        mesh = Mesh(geo, field_specs=specs, allocate=True)
        # Stored in gid (Morton) order; keep that order for data mapping.
        stored = [
            (LogicalLocation(int(l), int(i), int(j), int(k)), int(rank))
            for l, i, j, k, rank in data["locations"]
        ]
        # Reconstruct the tree: refine ancestors until every stored leaf
        # exists, shallow leaves first so parents exist before children.
        for lloc, _ in sorted(stored, key=lambda t: t[0].level):
            while lloc not in mesh.tree.leaves:
                probe = lloc
                while probe.level > 0 and probe.parent() not in mesh.tree.leaves:
                    probe = probe.parent()
                if probe.level == 0:
                    raise ValueError(f"stored leaf {lloc} outside the tree")
                mesh.remesh(refine=[probe.parent()], derefine=[])
        if len(mesh.block_list) != len(stored):
            raise ValueError(
                f"restart mismatch: rebuilt {len(mesh.block_list)} blocks, "
                f"archive has {len(stored)}"
            )
        for gid, (lloc, rank) in enumerate(stored):
            blk = mesh.block_at(lloc)
            blk.rank = rank
            for spec in specs:
                blk.fields[spec.name][...] = data[f"blk{gid}/{spec.name}"]
    return mesh, cycle, time
