"""Parthenon-style input decks.

Parthenon (and VIBE) configure runs from ini-like input files with
``<block>`` section headers::

    <parthenon/mesh>
    nx1 = 128
    nx2 = 128
    nx3 = 128
    numlevel = 3

    <parthenon/meshblock>
    nx1 = 16

    <burgers>
    num_scalars = 8
    recon = weno5        # or plm

    <platform>
    backend = gpu
    num_gpus = 1
    ranks_per_gpu = 12
    mode = modeled

This module parses that format into :class:`SimulationParams` and
:class:`ExecutionConfig`, so runs are reproducible from a deck exactly like
the original benchmark.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Tuple, Union

from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams
from repro.mesh.refinement import UnknownPolicyError, check_policy

_SECTION_RE = re.compile(r"^<([^>]+)>$")

Value = Union[int, float, bool, str]


class InputError(ValueError):
    """Malformed input deck."""


def _coerce(raw: str) -> Value:
    raw = raw.strip()
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def parse_input(text: str) -> Dict[str, Dict[str, Value]]:
    """Parse deck text into ``{section: {key: value}}``."""
    sections: Dict[str, Dict[str, Value]] = {}
    current: Dict[str, Value] = {}
    current_name = ""
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        m = _SECTION_RE.match(line)
        if m:
            current_name = m.group(1).strip()
            current = sections.setdefault(current_name, {})
            continue
        if "=" not in line:
            raise InputError(f"line {lineno}: expected 'key = value', got {line!r}")
        if not current_name:
            raise InputError(
                f"line {lineno}: key/value before any <section> header"
            )
        key, _, raw = line.partition("=")
        current[key.strip()] = _coerce(raw)
    return sections


def _get(sections, section, key, default=None):
    return sections.get(section, {}).get(key, default)


def params_from_input(text: str) -> Tuple[SimulationParams, ExecutionConfig]:
    """Build run configuration from a deck.

    Unknown keys are ignored (like Parthenon, which lets packages read
    their own sections); inconsistent meshes raise :class:`InputError` via
    the underlying validation.
    """
    s = parse_input(text)
    nx1 = _get(s, "parthenon/mesh", "nx1", 128)
    nx2 = _get(s, "parthenon/mesh", "nx2", nx1)
    nx3 = _get(s, "parthenon/mesh", "nx3", nx1)
    ndim = 3 if nx3 > 1 else (2 if nx2 > 1 else 1)
    if ndim == 3 and not (nx1 == nx2 == nx3):
        raise InputError(
            "anisotropic meshes are not supported: "
            f"nx1={nx1} nx2={nx2} nx3={nx3}"
        )
    block = _get(s, "parthenon/meshblock", "nx1", 16)
    params = SimulationParams(
        ndim=ndim,
        mesh_size=nx1,
        block_size=block,
        num_levels=_get(s, "parthenon/mesh", "numlevel", 3),
        num_scalars=_get(s, "burgers", "num_scalars", 8),
        reconstruction=str(_get(s, "burgers", "recon", "weno5")),
        riemann=str(_get(s, "burgers", "riemann", "hll")),
        cfl=float(_get(s, "parthenon/time", "cfl", 0.4)),
        refine_every=_get(s, "parthenon/mesh", "refine_every", 1),
        derefine_gap=_get(s, "parthenon/mesh", "derefine_count", 10),
        refine_tol=float(_get(s, "burgers", "refine_tol", 0.15)),
        derefine_tol=float(_get(s, "burgers", "derefine_tol", 0.03)),
        refinement_policy=str(
            _get(s, "refinement", "policy", "first_derivative")
        ),
        block_budget=_get(s, "refinement", "block_budget", 0),
    )
    try:
        check_policy(params.refinement_policy)
    except UnknownPolicyError as exc:
        raise InputError(str(exc)) from exc
    if params.refinement_policy == "block_budget" and params.block_budget < 1:
        raise InputError(
            "<refinement> policy = block_budget needs block_budget >= 1"
        )
    backend = str(_get(s, "platform", "backend", "gpu"))
    config = ExecutionConfig(
        backend=backend,
        num_gpus=_get(s, "platform", "num_gpus", 1),
        ranks_per_gpu=_get(s, "platform", "ranks_per_gpu", 1),
        cpu_ranks=_get(s, "platform", "cpu_ranks", 96),
        num_nodes=_get(s, "platform", "num_nodes", 1),
        mode=str(_get(s, "platform", "mode", "modeled")),
        kernel_mode=str(_get(s, "platform", "kernel_mode", "packed")),
        kernel_backend=str(_get(s, "platform", "kernel_backend", "numpy")),
        num_shards=_get(s, "platform", "num_shards", 1),
        checkpoint_every=_get(s, "checkpoint", "every", 0),
    )
    return params, config


def load_input(path: Union[str, Path]) -> Tuple[SimulationParams, ExecutionConfig]:
    """Parse a deck from disk."""
    return params_from_input(Path(path).read_text())


def render_input(params: SimulationParams, config: ExecutionConfig) -> str:
    """The inverse: write a deck reproducing this configuration."""
    lines = [
        "<parthenon/mesh>",
        f"nx1 = {params.mesh_size}",
        f"nx2 = {params.mesh_size if params.ndim >= 2 else 1}",
        f"nx3 = {params.mesh_size if params.ndim >= 3 else 1}",
        f"numlevel = {params.num_levels}",
        f"refine_every = {params.refine_every}",
        f"derefine_count = {params.derefine_gap}",
        "",
        "<parthenon/meshblock>",
        f"nx1 = {params.block_size}",
        "",
        "<parthenon/time>",
        f"cfl = {params.cfl}",
        "",
        "<burgers>",
        f"num_scalars = {params.num_scalars}",
        f"recon = {params.reconstruction}",
        f"riemann = {params.riemann}",
        f"refine_tol = {params.refine_tol}",
        f"derefine_tol = {params.derefine_tol}",
        "",
        "<platform>",
        f"backend = {config.backend}",
        f"mode = {config.mode}",
        f"kernel_mode = {config.kernel_mode}",
        f"num_nodes = {config.num_nodes}",
    ]
    # Emitted only when non-default so pre-registry decks render
    # byte-identically (same convention as the <checkpoint> section).
    if config.kernel_backend != "numpy":
        lines.insert(
            lines.index(f"kernel_mode = {config.kernel_mode}") + 1,
            f"kernel_backend = {config.kernel_backend}",
        )
    # Same non-default-only convention: serial decks are byte-identical
    # to decks rendered before sharding existed.
    if config.num_shards > 1:
        lines.insert(
            lines.index(f"kernel_mode = {config.kernel_mode}") + 1,
            f"num_shards = {config.num_shards}",
        )
    if config.is_gpu:
        lines += [
            f"num_gpus = {config.num_gpus}",
            f"ranks_per_gpu = {config.ranks_per_gpu}",
        ]
    else:
        lines.append(f"cpu_ranks = {config.cpu_ranks}")
    # Emitted only when non-default so decks predating the policy
    # registry render byte-identically (same convention as <checkpoint>).
    if params.refinement_policy != "first_derivative" or params.block_budget:
        lines += ["", "<refinement>", f"policy = {params.refinement_policy}"]
        if params.block_budget:
            lines.append(f"block_budget = {params.block_budget}")
    # Emitted only when enabled so decks without checkpointing render
    # byte-identically to what they did before the section existed.
    if config.checkpoint_every > 0:
        lines += ["", "<checkpoint>", f"every = {config.checkpoint_every}"]
    return "\n".join(lines) + "\n"
