"""Crash-consistent periodic checkpointing for the driver.

A checkpoint captures the *full continuation state* of a
:class:`~repro.driver.driver.ParthenonDriver` — tree + fields (the whole
mesh), cycle/time, profiler, metrics registry, MPI counters, history
rows, refinement-policy birth records, and the pack-invalidation state —
so a run resumed at cycle N is bitwise indistinguishable from one that
never stopped (the differential harness in ``tests/test_restart_bitwise``
pins ``RunResult`` equality at 0 ULP and canonical-trace equality at the
byte level).

Atomicity protocol (the same two-phase shape Parthenon/AMReX restart
writers use):

1. pickle the payload into ``ckpt_NNNNNN.pkl.tmp<pid>``, ``fsync``,
   ``os.replace`` onto ``ckpt_NNNNNN.pkl`` — a reader can never observe
   a torn payload;
2. write the JSON manifest ``ckpt_NNNNNN.json`` (cycle, time, payload
   size, sha256) the same way.  The manifest is the commit point: a
   payload without a manifest is an aborted write and is ignored by
   :func:`latest_checkpoint`.

Reads verify the manifest's sha256 against the payload bytes before
unpickling; any mismatch, truncation, or version skew raises
:class:`CheckpointError` (a :class:`~repro.driver.outputs.RestartError`)
rather than adopting bad state.

What is deliberately *not* captured: :class:`BoundaryExchange` /
:class:`FluxCorrection` (purely a function of mesh + ranks; rebuilt on
restore), the contiguous mesh pack (rebuilt from block data, preserving
whether it was valid or invalidated at save time), and the hardware cost
models (pure functions of the config).  Checkpoint I/O itself touches no
profiler region and no metrics counter — cadence can never perturb the
simulated outcome, which is also why ``checkpoint_every`` is excluded
from :meth:`RunSpec.cache_key`.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
from pathlib import Path

import numpy as np
from typing import TYPE_CHECKING, List, Optional, Union

from repro import __version__
from repro.driver.outputs import RestartError

if TYPE_CHECKING:  # pragma: no cover
    from repro.driver.driver import ParthenonDriver
    from repro.resilience.faults import FaultInjector

PathLike = Union[str, Path]

CHECKPOINT_SCHEMA_VERSION = 1

#: Fixed pickle protocol so identical state always produces identical
#: bytes regardless of interpreter defaults (save->load->save is
#: byte-stable; a property test pins this).
PICKLE_PROTOCOL = 4

MANIFEST_SUFFIX = ".json"
PAYLOAD_SUFFIX = ".pkl"


class CheckpointError(RestartError):
    """A checkpoint is corrupt, truncated, missing, or incompatible."""


#: Driver attributes that, together, continue the run exactly.  Shared
#: object references among them (``pkg`` inside the refinement tagger,
#: the recorder inside the profiler) survive because the whole dict is
#: pickled in one pass.
_STATE_ATTRS = (
    "pkg",
    "mesh",
    "metrics",
    "mpi",
    "policy",
    "prof",
    "mem",
    "launch_records",
    "_plan",
    "time",
    "cycle",
    "zone_cycles",
    "cell_updates",
    "cells_communicated",
    "max_blocks",
    "rebuild_seconds",
    "oom",
    "history",
    "pack_rebuilds",
    "_measuring",
)

#: Set lazily by ``_update_memory`` / ``reset_metrics``; captured when
#: present so ``getattr`` fallbacks behave identically after restore.
_OPTIONAL_ATTRS = ("_worst_device", "_worst_device_bytes", "_warmup_cycles")


def capture_state(driver: "ParthenonDriver") -> dict:
    """Snapshot a driver (at a cycle boundary) into a payload dict."""
    state = {name: getattr(driver, name) for name in _STATE_ATTRS}
    for name in _OPTIONAL_ATTRS:
        if hasattr(driver, name):
            state[name] = getattr(driver, name)
    injector = getattr(driver, "fault_injector", None)
    return {
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "code_version": __version__,
        "cycle": driver.cycle,
        "time": driver.time,
        "params": driver.params,
        "config": driver.config,
        "pack_valid": driver._pack is not None,
        "state": state,
        "injector": (
            injector.state_dict()
            if injector is not None and injector.armed
            else None
        ),
    }


class _CanonicalPickler(pickle._Pickler):
    """A pickler whose bytes do not depend on object *identity*.

    ``pickle`` memoizes by ``id()``: two occurrences of one interned
    string become a back-reference, two equal-but-distinct strings are
    written twice.  A live object graph shares identifier strings by
    interning; an unpickled graph re-interns instance-dict keys (CPython
    key-sharing dicts) but not data-dict keys — so the same logical
    state pickles to different bytes before and after a round-trip.
    NumPy dtype instances have the same hazard: live arrays share the
    canonical ``dtype('f8')`` singleton, while unpickled arrays carry a
    fresh copy (dtype ``__reduce__`` passes ``copy=True``), so a mesh
    mixing restored arrays with rebuilt pack views holds two distinct
    but equal dtypes.  Skipping the memo for both writes every
    occurrence in full, making save→load→save byte-stable (a property
    test pins this).
    """

    def memoize(self, obj):
        if isinstance(obj, (str, np.dtype)):
            return
        super().memoize(obj)


def serialize_state(payload: dict) -> bytes:
    """Pickle ``payload`` into canonical (identity-insensitive) bytes."""
    buf = io.BytesIO()
    _CanonicalPickler(buf, protocol=PICKLE_PROTOCOL).dump(payload)
    return buf.getvalue()


def restore_driver(
    payload: dict,
    fault_injector: Optional["FaultInjector"] = None,
) -> "ParthenonDriver":
    """Reconstruct a driver from a checkpoint payload.

    The driver is built from the checkpointed params/config, its evolving
    state overwritten from the payload, and the derived machinery rewired
    from the restored state: boundary exchange and flux correction are
    rebuilt (their tables are a pure function of mesh + ranks), and the
    contiguous pack is rebuilt *only if it was valid at save time* — an
    invalidated pack stays invalidated so the resumed run re-counts the
    lazy rebuild exactly where the uninterrupted run would.  Nothing here
    touches the profiler or the restored metrics registry.
    """
    from repro.comm.bvals import BoundaryExchange
    from repro.comm.flux_correction import FluxCorrection
    from repro.driver.driver import ParthenonDriver
    from repro.kernels.backends import resolve_backend
    if payload.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint schema_version {payload.get('schema_version')!r}; "
            f"this build reads {CHECKPOINT_SCHEMA_VERSION}"
        )
    driver = ParthenonDriver(
        payload["params"], payload["config"], fault_injector=fault_injector
    )
    for name, value in payload["state"].items():
        setattr(driver, name, value)
    driver.bx = BoundaryExchange(driver.mesh, driver.mpi, metrics=driver.metrics)
    driver.fc = FluxCorrection(driver.mesh, driver.mpi)
    driver.bx.rebuild()
    driver.fc.set_neighbor_table(driver.bx.neighbor_table)
    # Recreate the kernel engine against the *restored* package via the
    # registry, re-resolving availability in this process (the effective
    # backend may differ from the checkpointing process's).  Sharded runs
    # keep the executor ``__init__`` already wired (its provider closures
    # read the driver's injector/cycle attributes at call time, so the
    # restored state is picked up automatically).
    if driver._shard_exec is None:
        driver._packed = None
        driver.kernel_backend = "numpy"
        if driver.numeric and driver.config.kernel_mode == "packed":
            backend = resolve_backend(driver.config.kernel_backend)
            driver.kernel_backend = backend.name
            driver._packed = backend.create_kernels(driver.pkg)
    driver._pack = None
    if driver.use_packed and payload.get("pack_valid"):
        # Reconstruct the pack the blocks aliased at save time — through
        # ``_build_pack`` so sharded restores allocate shared memory and
        # rebind workers.  No metrics and no pack_rebuilds bump: this
        # re-creates existing state, it is not a new rebuild event.
        driver._pack = driver._build_pack(metrics=None)
    return driver


# ---------------------------------------------------------------- files


def _names(cycle: int) -> "tuple[str, str]":
    stem = f"ckpt_{cycle:06d}"
    return stem + PAYLOAD_SUFFIX, stem + MANIFEST_SUFFIX


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def write_checkpoint(directory: PathLike, driver: "ParthenonDriver") -> Path:
    """Persist one checkpoint; returns the manifest path (commit record)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = serialize_state(capture_state(driver))
    payload_name, manifest_name = _names(driver.cycle)
    _atomic_write(directory / payload_name, payload)
    manifest = {
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "code_version": __version__,
        "cycle": driver.cycle,
        "time": driver.time,
        "payload": payload_name,
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    manifest_path = directory / manifest_name
    _atomic_write(
        manifest_path,
        (json.dumps(manifest, sort_keys=True, indent=2) + "\n").encode(),
    )
    return manifest_path


def _load_manifest(manifest_path: Path) -> dict:
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint manifest {manifest_path} is unreadable: {exc}"
        ) from exc
    if manifest.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint manifest {manifest_path} has schema_version "
            f"{manifest.get('schema_version')!r}; this build reads "
            f"{CHECKPOINT_SCHEMA_VERSION}"
        )
    return manifest


def read_checkpoint(path: PathLike) -> dict:
    """Load + verify one checkpoint; returns the payload dict.

    ``path`` may be a checkpoint directory (resolves to the latest valid
    checkpoint), a manifest ``.json``, or a payload ``.pkl`` (its sibling
    manifest is required — the manifest *is* the commit record).  The
    payload's sha256 must match the manifest before unpickling.
    """
    path = Path(path)
    if path.is_dir():
        manifest_path = latest_checkpoint(path)
        if manifest_path is None:
            raise CheckpointError(f"no valid checkpoint found in {path}")
        path = manifest_path
    if path.suffix == PAYLOAD_SUFFIX:
        path = path.with_suffix(MANIFEST_SUFFIX)
    if not path.is_file():
        raise CheckpointError(f"checkpoint manifest not found: {path}")
    manifest = _load_manifest(path)
    payload_path = path.parent / manifest["payload"]
    try:
        blob = payload_path.read_bytes()
    except OSError as exc:
        raise CheckpointError(
            f"checkpoint payload {payload_path} is unreadable: {exc}"
        ) from exc
    digest = hashlib.sha256(blob).hexdigest()
    if digest != manifest["sha256"]:
        raise CheckpointError(
            f"checkpoint payload {payload_path} fails its sha256 self-check "
            f"(manifest {manifest['sha256'][:12]}…, actual {digest[:12]}…)"
        )
    try:
        payload = pickle.loads(blob)
    except Exception as exc:  # truncated/garbage pickle
        raise CheckpointError(
            f"checkpoint payload {payload_path} does not unpickle: {exc}"
        ) from exc
    return payload


def list_checkpoints(directory: PathLike) -> List[Path]:
    """Manifest paths in ``directory``, ascending by cycle (unvalidated)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    out = []
    for p in sorted(directory.glob("ckpt_*" + MANIFEST_SUFFIX)):
        try:
            int(p.stem.split("_", 1)[1])
        except (IndexError, ValueError):
            continue
        out.append(p)
    return out


def latest_checkpoint(directory: PathLike) -> Optional[Path]:
    """The newest *valid* checkpoint's manifest path, or ``None``.

    Corrupt or torn checkpoints (bad JSON, missing payload, sha
    mismatch) are skipped — exactly the crash debris an aborted write
    leaves behind — so resume always lands on the last good state.
    """
    for manifest_path in reversed(list_checkpoints(directory)):
        try:
            manifest = _load_manifest(manifest_path)
            payload_path = manifest_path.parent / manifest["payload"]
            blob = payload_path.read_bytes()
            if hashlib.sha256(blob).hexdigest() != manifest["sha256"]:
                continue
        except (CheckpointError, OSError, KeyError):
            continue
        return manifest_path
    return None


class CheckpointManager:
    """Cadenced checkpoint writer attached to ``Driver.run``.

    ``save(driver)`` is called after every completed cycle and persists
    one checkpoint whenever ``driver.cycle`` is a positive multiple of
    ``every`` (``force=True`` bypasses the cadence).  Warmup cycles
    count: a kill inside warmup resumes from the last warmup boundary.
    """

    def __init__(self, directory: PathLike, every: int = 1) -> None:
        if every < 0:
            raise ValueError(f"checkpoint cadence must be >= 0, got {every}")
        self.directory = Path(directory)
        self.every = every
        self.written: List[Path] = []

    def save(self, driver: "ParthenonDriver", force: bool = False) -> Optional[Path]:
        if not force:
            if self.every <= 0 or driver.cycle <= 0:
                return None
            if driver.cycle % self.every != 0:
                return None
        manifest_path = write_checkpoint(self.directory, driver)
        self.written.append(manifest_path)
        return manifest_path

    def latest(self) -> Optional[Path]:
        return latest_checkpoint(self.directory)
