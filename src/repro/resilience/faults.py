"""Seeded, deterministic fault injection for resilience testing.

Production AMR frameworks treat restart as a correctness surface
(Parthenon's ``REQUIRES_RESTART`` metadata; AMReX's native checkpoint
layer), which means the recovery paths themselves need exercising.  This
module injects faults at *named sites* — the places a real campaign
worker dies: inside a kernel launch, while packing/unpacking ghost
buffers, during remeshing, while persisting an artifact, or anywhere in
the worker process — on a schedule that is a pure function of the plan's
seed, so every failure a test provokes is exactly reproducible.

Determinism is counter-based (Philox-style): the decision for the
``i``-th check of site ``s`` under seed ``q`` is derived from
``sha256(q:s:i)``, never from stateful RNG objects.  Two consequences:

* the same :class:`FaultPlan` always yields the same fault schedule, and
* an injector whose counters were restored from a checkpoint continues
  the *same* stream — resume never shifts the schedule.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

#: Every place the toolkit can inject a fault.  Sites are threaded
#: through the driver (kernel launches, ghost pack/unpack, remesh),
#: the campaign worker (whole-worker crash, artifact persistence), and
#: the shard executor (a packed-stage dispatch to shard workers).
FAULT_SITES: Tuple[str, ...] = (
    "kernel_launch",
    "ghost_pack",
    "ghost_unpack",
    "remesh",
    "artifact_write",
    "campaign_worker",
    "shard_worker",
)


class FaultError(RuntimeError):
    """A misconfigured fault plan (unknown site, bad probability)."""


class InjectedFault(RuntimeError):
    """The exception an armed fault site raises when it fires."""

    def __init__(self, site: str, cycle: int, invocation: int) -> None:
        super().__init__(
            f"injected fault at site {site!r} "
            f"(cycle {cycle}, invocation {invocation})"
        )
        self.site = site
        self.cycle = cycle
        self.invocation = invocation


@dataclass(frozen=True)
class FaultSpec:
    """Arm one site: fire at a cycle and/or with a probability.

    ``cycle`` of ``None`` matches every cycle; ``probability`` scales
    each matching check's chance of firing (1.0 = always); ``max_fires``
    bounds total fires so a recovered-and-retried site does not fail
    forever (the default, one fire, models a transient fault).
    """

    site: str
    cycle: Optional[int] = None
    probability: float = 1.0
    max_fires: int = 1

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise FaultError(
                f"unknown fault site {self.site!r}; "
                f"registered sites: {', '.join(FAULT_SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_fires < 0:
            raise FaultError(f"max_fires must be >= 0, got {self.max_fires}")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the armed sites — picklable, shippable to workers."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def single(cls, site: str, seed: int = 0, **kwargs) -> "FaultPlan":
        """A plan arming exactly one site (the common test shape)."""
        return cls(seed=seed, specs=(FaultSpec(site=site, **kwargs),))


@dataclass
class FaultCounters:
    """Per-site check/fire tallies with an associative+commutative merge.

    ``merge`` adds counts per site, so folding a campaign's worker
    counters together yields the same totals in any order or grouping —
    the same contract :class:`repro.observability.MetricsRegistry` keeps.
    """

    checks: Dict[str, int] = field(default_factory=dict)
    fired: Dict[str, int] = field(default_factory=dict)

    def merge(self, other: "FaultCounters") -> "FaultCounters":
        out = FaultCounters(checks=dict(self.checks), fired=dict(self.fired))
        for name, n in other.checks.items():
            out.checks[name] = out.checks.get(name, 0) + n
        for name, n in other.fired.items():
            out.fired[name] = out.fired.get(name, 0) + n
        return out

    def to_dict(self) -> dict:
        return {
            "checks": dict(sorted(self.checks.items())),
            "fired": dict(sorted(self.fired.items())),
        }

    def total_fired(self) -> int:
        return sum(self.fired.values())


def _stream_draw(seed: int, site: str, invocation: int) -> float:
    """Uniform [0, 1) draw for one (seed, site, invocation) triple."""
    digest = hashlib.sha256(
        f"{seed}:{site}:{invocation}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at every instrumented site.

    ``check(site, cycle)`` raises :class:`InjectedFault` when an armed
    spec matches and its per-site stream draw clears the probability;
    otherwise it only advances the site's invocation counter.  The
    counter state (and nothing else) is the injector's mutable state, so
    checkpointing it — :meth:`state_dict` / :meth:`load_state_dict` —
    resumes the exact schedule.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self.counters = FaultCounters()
        self._fires_by_spec: Dict[int, int] = {}

    @property
    def armed(self) -> bool:
        return bool(self.plan.specs)

    def check(self, site: str, cycle: int = -1) -> None:
        """One pass through an instrumented site; may raise."""
        if not self.armed:
            return
        invocation = self.counters.checks.get(site, 0)
        self.counters.checks[site] = invocation + 1
        for ispec, spec in enumerate(self.plan.specs):
            if spec.site != site:
                continue
            if spec.cycle is not None and spec.cycle != cycle:
                continue
            if self._fires_by_spec.get(ispec, 0) >= spec.max_fires:
                continue
            if _stream_draw(self.plan.seed, site, invocation) >= spec.probability:
                continue
            self._fires_by_spec[ispec] = self._fires_by_spec.get(ispec, 0) + 1
            self.counters.fired[site] = self.counters.fired.get(site, 0) + 1
            raise InjectedFault(site, cycle, invocation)

    # ------------------------------------------------------ checkpointing

    def state_dict(self) -> dict:
        return {
            "checks": dict(self.counters.checks),
            "fired": dict(self.counters.fired),
            "fires_by_spec": dict(self._fires_by_spec),
        }

    def load_state_dict(self, state: dict) -> None:
        self.counters = FaultCounters(
            checks=dict(state["checks"]), fired=dict(state["fired"])
        )
        self._fires_by_spec = {
            int(k): v for k, v in state["fires_by_spec"].items()
        }


class _NullInjector(FaultInjector):
    """Shared no-op injector for undisturbed runs (null-object pattern)."""

    def check(self, site: str, cycle: int = -1) -> None:
        return


#: The driver's default: checks cost one attribute load + call, nothing
#: is counted, nothing can fire.
NULL_INJECTOR = _NullInjector()
