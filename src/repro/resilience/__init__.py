"""Resilience toolkit: fault injection + crash-consistent checkpoints.

See DESIGN §9 for the checkpoint schema, the atomicity protocol, the
fault-site registry, and the bitwise-resume guarantee.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    CheckpointManager,
    capture_state,
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    restore_driver,
    serialize_state,
    write_checkpoint,
)
from repro.resilience.faults import (
    FAULT_SITES,
    FaultCounters,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    NULL_INJECTOR,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointManager",
    "FAULT_SITES",
    "FaultCounters",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "NULL_INJECTOR",
    "capture_state",
    "latest_checkpoint",
    "list_checkpoints",
    "read_checkpoint",
    "restore_driver",
    "serialize_state",
    "write_checkpoint",
]
