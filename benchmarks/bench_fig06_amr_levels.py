"""Fig. 6: performance vs #AMR Levels (mesh 128, block 16).

Paper takeaways: CPU FOM nearly constant with depth; GPU drops markedly.
GPU 1R total time grows 2.1x (1->2 levels) and 6.0x (1->3); the Kokkos
kernel fraction falls 31.2% -> 23.4% -> 17.9%.  At block 8, communicated
cells grow 1.4x / 2.7x while updates grow only 1.2x / 2.0x.
"""

from conftest import bench_scale, run_once

from repro.api import RunSpec, Simulation
from repro.core.characterize import kernel_fraction
from repro.core.report import render_sweep, render_table
from repro.core.sweeps import amr_level_sweep
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128

CONFIGS = {
    "GPU1-1R": ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1),
    "GPU1-BestR": ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=12),
    "CPU-96R": ExecutionConfig(backend="cpu", cpu_ranks=96),
}


def test_fig6_level_sweep(benchmark, save_report, scale):
    base = SimulationParams(mesh_size=MESH, block_size=16)

    def run():
        series = amr_level_sweep(
            base, CONFIGS, levels=(1, 2, 3), ncycles=scale["ncycles"]
        )
        return render_sweep(
            series,
            "#AMR levels",
            title=(
                f"Fig 6: FOM vs #AMR Levels (mesh {MESH}, block 16; "
                "paper: CPU ~flat, GPU drops markedly)"
            ),
        )

    save_report("fig06_levels", run_once(benchmark, run))


def test_fig6_kernel_fractions_and_growth(benchmark, save_report, scale):
    def run():
        gpu = CONFIGS["GPU1-1R"]
        results = {}
        for lvl in (1, 2, 3):
            results[lvl] = Simulation(RunSpec(params=SimulationParams(mesh_size=MESH, block_size=16, num_levels=lvl), config=gpu, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
        paper_fracs = {1: 31.2, 2: 23.4, 3: 17.9}
        rows = []
        for lvl in (1, 2, 3):
            r = results[lvl]
            rows.append(
                [
                    lvl,
                    f"{kernel_fraction(r) * 100:.1f}",
                    f"{paper_fracs[lvl]}",
                    f"{r.wall_seconds / results[1].wall_seconds:.2f}x",
                    {1: "1.0x", 2: "2.1x", 3: "6.0x"}[lvl],
                ]
            )
        return render_table(
            ["levels", "kernel frac (%)", "paper (%)", "time growth", "paper growth"],
            rows,
            title="Section IV-C: kernel fraction and time growth vs depth (GPU 1R)",
        )

    save_report("fig06_kernel_fractions", run_once(benchmark, run))


def test_fig6_block8_comm_growth(benchmark, save_report, scale):
    """Section IV-C's communicated-cell growth at the smallest block size."""

    def run():
        gpu = CONFIGS["GPU1-1R"]
        results = {}
        for lvl in (1, 2, 3):
            results[lvl] = Simulation(RunSpec(params=SimulationParams(mesh_size=MESH, block_size=8, num_levels=lvl), config=gpu, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
        base = results[1]
        rows = []
        paper = {2: ("1.4x", "1.2x"), 3: ("2.7x", "2.0x")}
        for lvl in (2, 3):
            r = results[lvl]
            rows.append(
                [
                    f"1 -> {lvl} levels",
                    f"{r.cells_communicated / base.cells_communicated:.2f}x",
                    paper[lvl][0],
                    f"{r.cell_updates / base.cell_updates:.2f}x",
                    paper[lvl][1],
                ]
            )
        return render_table(
            ["depth", "comm cells", "paper", "cell updates", "paper"],
            rows,
            title=f"Section IV-C: communication growth with depth (block 8, mesh {MESH})",
        )

    save_report("fig06_block8_comm", run_once(benchmark, run))
