"""Section VIII-B: the auxiliary-memory model and the worked example.

Paper: with num_scalar = 8, nx1 = 8, ng = 4, B = 8 bytes, 1024 thread
blocks, the kernel-restructuring optimization shrinks auxiliary memory from
8.858 GB (per-MeshBlock 3D buffers over 4096 blocks) to 0.138 GB
(per-ThreadBlock 2D slices) — a 64x reduction.
"""

from conftest import run_once

from repro.core.memory_footprint import (
    aux_memory_post_optimization,
    aux_memory_pre_optimization,
)
from repro.core.report import render_table


def test_sec8_worked_example(benchmark, save_report):
    def run():
        pre = aux_memory_pre_optimization(4096, nx1=8, ng=4, num_scalar=8)
        post = aux_memory_post_optimization(1024, nx1=8, ng=4, num_scalar=8)
        rows = [
            ["pre-optimization (4096 blocks, 3D buffers)", f"{pre / 1e9:.3f} GB", "8.858 GB"],
            ["post-optimization (1024 thread blocks, 2D)", f"{post / 1e9:.3f} GB", "0.138 GB"],
            ["reduction", f"{pre / post:.0f}x", "64x"],
        ]
        return render_table(
            ["configuration", "measured", "paper"],
            rows,
            title="Section VIII-B: auxiliary-memory worked example",
        )

    save_report("sec8_memory_model", run_once(benchmark, run))


def test_sec8_aux_memory_vs_block_size(benchmark, save_report):
    def run():
        rows = []
        for nx1 in (8, 16, 32):
            nblocks = (128 // nx1) ** 3
            pre = aux_memory_pre_optimization(nblocks, nx1, ng=4, num_scalar=8)
            post = aux_memory_post_optimization(1024, nx1, ng=4, num_scalar=8)
            rows.append(
                [
                    nx1,
                    nblocks,
                    f"{pre / 1e9:.3f}",
                    f"{post / 1e9:.3f}",
                    f"{pre / post:.0f}x",
                ]
            )
        return render_table(
            ["block size", "base blocks (mesh 128)", "pre GB", "post GB", "reduction"],
            rows,
            title=(
                "Section VIII-B: aux memory vs block size — small blocks "
                "benefit most from restructuring"
            ),
        )

    save_report("sec8_aux_vs_block", run_once(benchmark, run))
