"""Fig. 8: effect of increasing MPI ranks per GPU.

Paper takeaways: substantial gains up to ~12 ranks per GPU, then decline
from collective/IPC overheads; scaling is capped by the 80 GB HBM — memory
grows with ranks until OOM (Section IV-E).
"""

from conftest import bench_scale, run_once

from repro.core.report import render_table
from repro.core.sweeps import gpu_rank_sweep
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128
RANKS = (1, 4, 12) if SCALE["quick"] else (1, 2, 4, 6, 8, 12, 16, 24)


def test_fig8_ranks_per_gpu(benchmark, save_report, scale):
    base = SimulationParams(mesh_size=MESH, block_size=8, num_levels=3)

    def run():
        points = gpu_rank_sweep(base, ranks_per_gpu=RANKS, ncycles=scale["ncycles"])
        rows = []
        best = max(
            (p for p in points if not p.oom),
            key=lambda p: p.fom,
            default=points[0],
        )
        for pt in points:
            r = pt.result
            rows.append(
                [
                    int(pt.x),
                    "OOM" if pt.oom else f"{pt.fom:.3e}",
                    f"{r.device_memory_peak / 2**30:.1f}" if r else "-",
                    "<-- best" if pt is best else "",
                ]
            )
        return render_table(
            ["ranks/GPU", "FOM", "device GiB", ""],
            rows,
            title=(
                f"Fig 8: FOM vs ranks per GPU (mesh {MESH}, block 8, 3 levels; "
                "paper: optimum ~12 ranks, then decline / OOM)"
            ),
        )

    save_report("fig08_gpu_ranks", run_once(benchmark, run))
