"""Table III: GPU microarchitecture analysis of the top kernels.

Mesh 128, 3 AMR levels, block sizes 32 and 16 — duration, SM utilization,
SM occupancy, warp utilization, bandwidth utilization, arithmetic intensity.
Paper anchors: CalculateFluxes >100 regs -> 24% occupancy; warp utilization
94.1% (B32) -> 67.6% (B16); BW utilization 18.5% -> 11.2%; AI 4.3 -> 3.4;
kernels average 5.0-5.4 FLOPs/byte against the H100's 10.1 balance.
"""

from conftest import bench_scale, run_once

from repro.core.microarch import build_microarch_table
from repro.core.report import render_microarch
from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams
from repro.hardware.gpu import GPUModel

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128
GPU_1R = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)


def _table_for(block_size, scale):
    params = SimulationParams(mesh_size=MESH, block_size=block_size, num_levels=3)
    driver = ParthenonDriver(params, GPU_1R)
    driver.run(scale["ncycles"], warmup=scale["warmup"])
    return build_microarch_table(
        driver.launch_records, GPUModel(), per_cycle_of=scale["ncycles"]
    )


def test_table3_block32(benchmark, save_report, scale):
    def run():
        table = _table_for(32, scale)
        return render_microarch(
            table,
            title=(
                f"Table III (B32, mesh {MESH}, 3 levels) — paper CF row: "
                "135ms / 32.3 / 24.1 / 94.1 / 18.5 / 4.3"
            ),
        )

    save_report("table3_b32", run_once(benchmark, run))


def test_table3_block16(benchmark, save_report, scale):
    def run():
        table = _table_for(16, scale)
        return render_microarch(
            table,
            title=(
                f"Table III (B16, mesh {MESH}, 3 levels) — paper CF row: "
                "94.9ms / 27.9 / 24.2 / 67.6 / 11.2 / 3.4"
            ),
        )

    save_report("table3_b16", run_once(benchmark, run))
