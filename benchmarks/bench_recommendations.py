"""Section VIII as a tool: the automatic bottleneck advisor.

Runs the paper's worst configuration (1 GPU - 1 rank, small blocks, deep
AMR) and prints the ranked serial bottlenecks with their Amdahl ceilings
and the matching paper recommendations.
"""

from conftest import bench_scale, run_once

from repro.api import RunSpec, Simulation
from repro.core.recommendations import render_recommendations
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128


def test_bottleneck_advisor_gpu_1r(benchmark, save_report, scale):
    def run():
        result = Simulation(RunSpec(params=SimulationParams(mesh_size=MESH, block_size=8, num_levels=3), config=ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1), ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
        return render_recommendations(result)

    save_report("recommendations_gpu1r", run_once(benchmark, run))


def test_bottleneck_advisor_best_rank(benchmark, save_report, scale):
    def run():
        result = Simulation(RunSpec(params=SimulationParams(mesh_size=MESH, block_size=8, num_levels=3), config=ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=12), ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
        return render_recommendations(result)

    save_report("recommendations_gpu12r", run_once(benchmark, run))
