"""Fig. 4: performance vs mesh size (static scaling).

MeshBlockSize = 16, #AMR Levels = 3, mesh size swept over
{64, 96, 128, 160, 192, 256}.  Paper takeaways: GPU FOM degrades with
larger meshes (serial portion grows faster than kernel time: 64->128 grows
communicated cells 5.9x, cell updates 4.5x, serial 5.4x, kernel 2.8x);
CPU with 96 ranks improves up to mesh 128 as under-utilized ranks fill.
"""

from conftest import bench_scale, run_once

from repro.api import RunSpec, Simulation
from repro.core.report import render_sweep, render_table
from repro.core.sweeps import mesh_size_sweep
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESHES = (64, 96, 128) if SCALE["quick"] else (64, 96, 128, 160, 192, 256)

CONFIGS = {
    "GPU1-1R": ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1),
    "GPU1-BestR": ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=12),
    "GPU4-BestR": ExecutionConfig(backend="gpu", num_gpus=4, ranks_per_gpu=12),
    "CPU-96R": ExecutionConfig(backend="cpu", cpu_ranks=96),
}


def test_fig4_mesh_size_sweep(benchmark, save_report, scale):
    base = SimulationParams(block_size=16, num_levels=3)

    def run():
        series = mesh_size_sweep(
            base, CONFIGS, mesh_sizes=MESHES, ncycles=scale["ncycles"]
        )
        return render_sweep(
            series,
            "mesh size",
            title=(
                "Fig 4: FOM (zone-cycles/s) vs mesh size "
                "(block 16, 3 levels; paper: GPU declines with mesh size, "
                "CPU-96R peaks near mesh 128)"
            ),
        )

    save_report("fig04_mesh_size", run_once(benchmark, run))


def test_fig4_growth_factors(benchmark, save_report, scale):
    """Section IV-A's quoted 64 -> 128 growth factors."""

    def run():
        gpu = CONFIGS["GPU1-1R"]
        a = Simulation(RunSpec(params=SimulationParams(mesh_size=64, block_size=16, num_levels=3), config=gpu, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
        b = Simulation(RunSpec(params=SimulationParams(mesh_size=128, block_size=16, num_levels=3), config=gpu, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
        rows = [
            [
                "communicated cells",
                f"{b.cells_communicated / a.cells_communicated:.2f}x",
                "5.9x",
            ],
            ["cell updates", f"{b.cell_updates / a.cell_updates:.2f}x", "4.5x"],
            [
                "serial time",
                f"{b.serial_seconds / a.serial_seconds:.2f}x",
                "5.4x",
            ],
            [
                "kernel time",
                f"{b.kernel_seconds / a.kernel_seconds:.2f}x",
                "2.8x",
            ],
        ]
        return render_table(
            ["quantity", "measured growth 64->128", "paper"],
            rows,
            title="Section IV-A: growth factors from mesh 64 to 128 (GPU 1R)",
        )

    save_report("fig04_growth_factors", run_once(benchmark, run))
