"""Service load: the sweep server under a mixed, cache-hot workload.

Drives a real :class:`~repro.service.SweepServer` (thread executor, real
sockets) with the traffic shape the north-star cares about: many users
asking for mostly the *same* configurations.  A small set of unique
specs is seeded first (those pay for execution once); the remaining
requests are a deterministic submit/status/result mix over those specs,
so >= 90% of submissions resolve by dedup or cache hit — the property
that lets one box serve heavy traffic.

Reports per-request p50/p99 latency and sustained throughput, and
writes the machine-readable trajectory to ``BENCH_service.json`` at the
repo root.  Two hard gates ride along at every scale: zero 5xx
responses, and a >= 90% submission hit ratio.

Scale: ``paper`` plays 1000 requests over 8 unique specs; ``quick``
plays 150 over 4 — same mix, same gates.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from conftest import bench_json_path, bench_scale, run_once

from repro.api import RunSpec, build_execution_config, build_simulation_params
from repro.core.report import render_table
from repro.service import QuotaPolicy, ServerThread, TenantQuotas

SCALE = bench_scale()
TOTAL_REQUESTS = 150 if SCALE["quick"] else 1000
UNIQUE_SPECS = 4 if SCALE["quick"] else 8
#: Gate: fraction of submissions served without a new execution.
MIN_HIT_RATIO = 0.90
#: Deterministic request mix after seeding (out of every 10 requests).
MIX = ("submit",) * 6 + ("status",) * 3 + ("result",)

BENCH_JSON = bench_json_path("service")

#: The benchmark measures the service, not admission control: quotas
#: sized so a single-client hammer never trips the rate limiter.
QUOTAS = QuotaPolicy(
    rate_per_s=100_000.0, burst=2 * TOTAL_REQUESTS, max_inflight=4096
)


def _specs():
    """UNIQUE_SPECS distinct modeled configurations, all cheap."""
    specs = []
    for i in range(UNIQUE_SPECS):
        params = build_simulation_params(
            ndim=2,
            mesh_size=32 + 8 * (i % 4),
            block_size=8,
            num_levels=2,
            num_scalars=1 + i // 4,
        )
        config = build_execution_config(
            backend="gpu", num_gpus=1, ranks_per_gpu=1
        )
        specs.append(
            RunSpec(
                params=params,
                config=config,
                ncycles=SCALE["ncycles"],
                warmup=SCALE["warmup"],
                label=f"load-{i}",
            )
        )
    return specs


def _percentile(sorted_ms, q):
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, int(round(q * (len(sorted_ms) - 1))))
    return sorted_ms[idx]


def _play_workload(client, specs):
    docs = [spec.to_json() for spec in specs]
    keys = [spec.cache_key() for spec in specs]
    latencies_ms = []
    statuses = {}
    requests = 0

    def hit(resp):
        statuses[resp.status] = statuses.get(resp.status, 0) + 1

    t_start = time.perf_counter()
    # Seed: one submission per unique spec, then wait until all are done
    # (waits are control traffic — not measured, not counted).
    for doc, key in zip(docs, keys):
        t0 = time.perf_counter()
        resp = client.submit(doc, tenant="bench")
        latencies_ms.append((time.perf_counter() - t0) * 1e3)
        requests += 1
        hit(resp)
        assert resp.json["id"] == key
    for key in keys:
        client.wait(key, timeout_s=300.0)

    # Mixed steady state: mostly duplicate submissions, some reads.
    i = 0
    while requests < TOTAL_REQUESTS:
        kind = MIX[i % len(MIX)]
        key = keys[i % len(keys)]
        t0 = time.perf_counter()
        if kind == "submit":
            resp = client.submit(docs[i % len(docs)], tenant="bench")
        elif kind == "status":
            resp = client.status(key)
        else:
            resp = client.result(key)
        latencies_ms.append((time.perf_counter() - t0) * 1e3)
        requests += 1
        hit(resp)
        i += 1
    wall_s = time.perf_counter() - t_start
    return latencies_ms, statuses, requests, wall_s


def test_service_load(benchmark, save_report):
    def run():
        specs = _specs()
        with tempfile.TemporaryDirectory() as data_dir:
            with ServerThread(
                data_dir, workers=2, quotas=TenantQuotas(QUOTAS)
            ) as client:
                latencies_ms, statuses, requests, wall_s = _play_workload(
                    client, specs
                )
                stats = client.stats().json["stats"]

        # -------------------------------------------------------- gates
        server_errors = sum(
            n for status, n in statuses.items() if status >= 500
        )
        assert server_errors == 0, f"5xx responses: {statuses}"
        submissions = stats["submitted"] + stats["coalesced"]
        hits = stats["coalesced"] + stats["cache_hits"]
        hit_ratio = hits / submissions
        assert hit_ratio >= MIN_HIT_RATIO, (
            f"submission hit ratio {hit_ratio:.3f} < {MIN_HIT_RATIO} "
            f"({stats})"
        )
        assert stats["executed"] == UNIQUE_SPECS, stats

        # ------------------------------------------------------ numbers
        ordered = sorted(latencies_ms)
        p50 = _percentile(ordered, 0.50)
        p99 = _percentile(ordered, 0.99)
        throughput = requests / wall_s
        doc = {
            "schema": "repro.bench_service",
            "schema_version": 1,
            "scale": "quick" if SCALE["quick"] else "paper",
            "requests": requests,
            "unique_specs": UNIQUE_SPECS,
            "request_mix": {
                "submit": MIX.count("submit"),
                "status": MIX.count("status"),
                "result": MIX.count("result"),
            },
            "host_cpu_count": os.cpu_count(),
            "wall_seconds": wall_s,
            "throughput_rps": throughput,
            "latency_ms": {
                "p50": p50,
                "p99": p99,
                "max": ordered[-1],
            },
            "hit_ratio": hit_ratio,
            "executed": stats["executed"],
            "coalesced": stats["coalesced"],
            "cache_hits": stats["cache_hits"],
            "http_statuses": {str(k): v for k, v in sorted(statuses.items())},
        }
        BENCH_JSON.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")

        rows = [
            ["requests", requests],
            ["unique specs", UNIQUE_SPECS],
            ["hit ratio", f"{hit_ratio * 100:.1f}%"],
            ["p50 latency", f"{p50:.2f} ms"],
            ["p99 latency", f"{p99:.2f} ms"],
            ["throughput", f"{throughput:.0f} req/s"],
            ["executions", stats["executed"]],
            ["5xx", server_errors],
        ]
        return render_table(
            ["metric", "value"],
            rows,
            title=(
                f"Sweep-service load ({doc['scale']} scale, "
                f"{os.cpu_count()} host cores; JSON trajectory at "
                f"{BENCH_JSON.name})"
            ),
        )

    save_report("service_load", run_once(benchmark, run))
