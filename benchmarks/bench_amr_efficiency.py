"""AMR's reason to exist, quantified (the context behind Fig. 1a).

Compares the cells AMR actually processes against the uniformly-fine grid
that would deliver the same resolution at the front, across block sizes —
finer blocks spend the budget more precisely (Fig. 1a) — and measures the
cost of the derefinement gap (Section II-G's 10-cycle rule): stale fine
blocks trail the moving front.
"""

from conftest import bench_scale, run_once

from dataclasses import replace

from repro.api import RunSpec, Simulation
from repro.core.report import render_table
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128
GPU_1R = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)


def test_amr_vs_uniform_fine(benchmark, save_report, scale):
    def run():
        rows = []
        for block in (8, 16, 32):
            params = SimulationParams(
                mesh_size=MESH, block_size=block, num_levels=3
            )
            r = Simulation(RunSpec(params=params, config=GPU_1R, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
            amr_cells = r.cell_updates / r.cycles
            uniform = (MESH * 2 ** (params.num_levels - 1)) ** 3
            rows.append(
                [
                    block,
                    f"{amr_cells:.3e}",
                    f"{uniform:.3e}",
                    f"{uniform / amr_cells:.1f}x",
                ]
            )
        return render_table(
            ["block size", "AMR cells/cycle", "uniform-fine cells", "savings"],
            rows,
            title=(
                f"AMR efficiency (mesh {MESH}, 3 levels): cells processed vs "
                "an equivalent uniformly-fine grid"
            ),
        )

    save_report("amr_efficiency", run_once(benchmark, run))


def test_derefinement_gap_cost(benchmark, save_report, scale):
    """Section II-G ablation: the 10-cycle derefinement gap leaves stale
    fine blocks trailing the front, inflating cells and memory."""

    def run():
        rows = []
        base = SimulationParams(
            mesh_size=MESH, block_size=8, num_levels=3, wavefront_speed=0.02
        )
        for gap in (0, 10, 30):
            params = replace(base, derefine_gap=gap)
            r = Simulation(RunSpec(params=params, config=GPU_1R, ncycles=scale["ncycles"], warmup=max(scale["warmup"], 3))).run()
            rows.append(
                [
                    gap,
                    r.final_blocks,
                    f"{r.cell_updates / r.cycles:.3e}",
                    f"{r.device_memory_peak / 2**30:.1f}",
                    f"{r.fom:.3e}",
                ]
            )
        return render_table(
            ["derefine gap", "blocks", "cells/cycle", "device GiB", "FOM"],
            rows,
            title=(
                "Derefinement-gap ablation (block 8, moving front): longer "
                "gaps keep stale fine blocks alive"
            ),
        )

    save_report("derefine_gap", run_once(benchmark, run))
