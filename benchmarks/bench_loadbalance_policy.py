"""Ablation: Morton-contiguous vs round-robin block placement.

Parthenon distributes blocks as contiguous chunks of the Z-order curve
(Section II-E) precisely because it keeps neighbor communication local to a
rank.  This benchmark quantifies the choice: strided round-robin placement
balances perfectly but turns most ghost exchanges into remote messages.
"""

from conftest import bench_scale, run_once

from repro.comm.bvals import BoundaryExchange
from repro.comm.mpi import SimMPI
from repro.core.report import render_table
from repro.driver.params import SimulationParams
from repro.mesh.loadbalance import balance
from repro.mesh.mesh import Mesh

SCALE = bench_scale()
MESH = 32 if SCALE["quick"] else 64


def test_lb_policy_locality(benchmark, save_report):
    def run():
        params = SimulationParams(
            ndim=3, mesh_size=MESH, block_size=8, num_levels=2
        )
        rows = []
        for nranks in (4, 12, 48):
            for policy in ("contiguous", "round_robin"):
                mesh = Mesh(
                    params.geometry(),
                    field_specs=[],
                    allocate=False,
                )
                mesh.remesh(refine=[mesh.block_list[0].lloc], derefine=[])
                plan = balance(mesh, nranks, policy=policy)
                bx = BoundaryExchange(mesh, SimMPI(nranks))
                bx.start_receive_bound_bufs()
                # No fields registered: count messages only.
                stats = bx.send_bound_bufs([])
                total = stats.messages_local + stats.messages_remote
                rows.append(
                    [
                        nranks,
                        policy,
                        f"{100 * stats.messages_remote / total:.1f}%",
                        f"{plan.imbalance:.3f}",
                    ]
                )
        return render_table(
            ["ranks", "policy", "remote message share", "cost imbalance"],
            rows,
            title=(
                "Load-balance policy ablation: Morton-contiguous keeps "
                "ghost exchange local; round-robin does not"
            ),
        )

    save_report("lb_policy", run_once(benchmark, run))
