"""Fig. 13: CPU instruction opcode distribution.

Mesh 128, block sizes 16 and 32, 3 AMR levels, 16 MPI ranks.  Paper:
vector opcodes dominate Total and Kernel; kernel instructions are >99% of
the total; serial is 39-41% loads/stores; the kernel vector share falls
from ~63% (B32) to ~52% (B16).
"""

from conftest import bench_scale, run_once

from repro.api import RunSpec, Simulation
from repro.core.opcode_analysis import opcode_breakdown
from repro.core.report import render_table
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams
from repro.hardware.opcode import CATEGORIES

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128
CPU_16 = ExecutionConfig(backend="cpu", cpu_ranks=16)


def test_fig13_opcode_distribution(benchmark, save_report, scale):
    def run():
        rows = []
        shares = {}
        for block in (16, 32):
            r = Simulation(RunSpec(params=SimulationParams(mesh_size=MESH, block_size=block, num_levels=3), config=CPU_16, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
            b = opcode_breakdown(r)
            shares[block] = b
            for part, mix in (
                ("Total", b.total),
                ("Serial", b.serial),
                ("Kernel", b.kernel),
            ):
                rows.append(
                    [f"B{block} {part}"]
                    + [f"{mix.fraction(c) * 100:.1f}" for c in CATEGORIES]
                )
        rows.append(
            [
                "anchors",
                "kern vec: B32~63 B16~52 (paper)",
                "serial ld+st 39-41%",
                "",
                "",
                "",
                "",
            ]
        )
        rows.append(
            [
                "kernel instr share",
                f"B16 {shares[16].kernel_instruction_share * 100:.1f}%",
                f"B32 {shares[32].kernel_instruction_share * 100:.1f}%",
                "(paper >99%)",
                "",
                "",
                "",
            ]
        )
        return render_table(
            ["portion"] + [f"{c} %" for c in CATEGORIES],
            rows,
            title=f"Fig 13: CPU opcode distribution (mesh {MESH}, 3 levels, 16 ranks)",
        )

    save_report("fig13_opcodes", run_once(benchmark, run))
