"""Shard scaling: numeric packed stages across shared-memory workers.

Sharded execution (DESIGN §12) splits the contiguous MeshBlockPack into
LPT-balanced chunk-grid shards and runs the flux/update stages in forked
worker processes over ``multiprocessing.shared_memory`` — the measured
analogue of the paper's CPU strong-scaling study (Fig. 7), where the
modeled ``SimMPI``/CPU path predicts near-ideal speedup until the serial
fraction plateaus.  This benchmark runs one numeric Burgers deck serial
and at 2 and 4 shards, re-checks the bitwise contract on every result
(``tests/test_shard_parity.py`` pins it exhaustively; a benchmark that
got fast by diverging would be worthless), and compares the measured
speedup curve against the modeled CPU-scaling prediction for the same
rank counts.  The machine-readable trajectory lands in
``BENCH_shards.json`` at the repo root.

Acceptance: >= 2x at 4 shards — asserted only at paper scale on hosts
with >= 4 cores (a single-core container serializes the workers, so the
curve is reported but not gated).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

from conftest import bench_json_path, bench_scale, run_once

from repro.api import (
    RunSpec,
    Simulation,
    build_execution_config,
    build_simulation_params,
)
from repro.core.report import render_table
from repro.solver.initial_conditions import gaussian_blob

SCALE = bench_scale()
MESH = 32 if SCALE["quick"] else 48
BLOCK = 16
NCYCLES = SCALE["ncycles"]
SHARD_COUNTS = (1, 2, 4)
#: Required measured speedup at 4 shards (paper scale, >= 4 real cores).
MIN_SPEEDUP_4 = 2.0

BENCH_JSON = bench_json_path("shards")


def _blob(mesh, pkg):
    gaussian_blob(mesh, pkg, amplitude=0.8, width=0.15)


def _numeric_spec(num_shards: int) -> RunSpec:
    params = build_simulation_params(
        ndim=3,
        mesh_size=MESH,
        block_size=BLOCK,
        num_levels=2,
        num_scalars=1,
    )
    config = build_execution_config(
        mode="numeric",
        kernel_mode="packed",
        num_gpus=1,
        ranks_per_gpu=2,
        num_shards=num_shards,
    )
    return RunSpec(
        params=params, config=config, ncycles=NCYCLES, warmup=SCALE["warmup"]
    )


def _modeled_prediction() -> dict:
    """SimMPI/CPU-model wall seconds at the shard counts' rank counts.

    The modeled path is the repo's Fig. 7 machinery: an analytic CPU
    platform simulation, so its speedup curve is the *prediction* the
    measured shard curve is compared against.
    """
    params = build_simulation_params(
        ndim=3, mesh_size=MESH, block_size=BLOCK, num_levels=2, num_scalars=1
    )
    walls = {}
    for ranks in SHARD_COUNTS:
        config = build_execution_config(
            mode="modeled", backend="cpu", cpu_ranks=ranks
        )
        spec = RunSpec(
            params=params, config=config, ncycles=NCYCLES,
            warmup=SCALE["warmup"],
        )
        walls[ranks] = Simulation(spec).run().wall_seconds
    return {n: walls[1] / walls[n] for n in SHARD_COUNTS}


def _run_measured(num_shards: int):
    sim = Simulation(_numeric_spec(num_shards), initial_conditions=_blob)
    t0 = time.perf_counter()
    result = sim.run()
    return result, time.perf_counter() - t0


def _assert_bitwise(serial, sharded) -> None:
    normalized = dataclasses.replace(
        sharded, config=serial.config, shards=serial.shards
    )
    assert dataclasses.asdict(normalized) == dataclasses.asdict(serial), (
        "sharded benchmark run diverged from serial — timings are void"
    )


def _write_bench_json(entries, predicted) -> None:
    doc = {
        "schema": "repro.bench_shards",
        "schema_version": 1,
        "scale": "quick" if SCALE["quick"] else "paper",
        "mesh": MESH,
        "block": BLOCK,
        "ndim": 3,
        "ncycles": NCYCLES,
        "host_cpu_count": os.cpu_count(),
        "timing": "one full numeric run per shard count (seconds)",
        "predicted_speedup_model": (
            "modeled backend=cpu cpu_ranks=N wall_seconds ratio (Fig. 7 path)"
        ),
        "predicted_speedup": {str(n): s for n, s in predicted.items()},
        "entries": entries,
    }
    BENCH_JSON.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")


def test_shard_scaling(benchmark, save_report):
    def run():
        predicted = _modeled_prediction()
        serial_result, serial_s = _run_measured(1)
        entries = []
        rows = []
        measured = {1: serial_s}
        for n in SHARD_COUNTS:
            if n == 1:
                result, seconds = serial_result, serial_s
            else:
                result, seconds = _run_measured(n)
                _assert_bitwise(serial_result, result)
                topo = result.shards["topology"]
                assert topo["num_shards"] == n
                assert sum(topo["blocks"]) == result.final_blocks
            measured[n] = seconds
            entries.append(
                {
                    "num_shards": n,
                    "seconds": seconds,
                    "speedup": serial_s / seconds,
                    "predicted_speedup": predicted[n],
                    "final_blocks": result.final_blocks,
                    "stage_seconds": (
                        result.shards.get("stage_seconds") if n > 1 else None
                    ),
                }
            )
            rows.append(
                [
                    n,
                    f"{seconds:.3f}",
                    f"{serial_s / seconds:.2f}x",
                    f"{predicted[n]:.2f}x",
                ]
            )
        _write_bench_json(entries, predicted)
        # Gate only where the hardware can express the parallelism.
        if not SCALE["quick"] and (os.cpu_count() or 1) >= 4:
            speedup4 = serial_s / measured[4]
            assert speedup4 >= MIN_SPEEDUP_4, (
                f"4-shard speedup is {speedup4:.2f}x on a "
                f"{os.cpu_count()}-core host, need >= {MIN_SPEEDUP_4}x"
            )
        return render_table(
            ["shards", "wall_s", "speedup", "predicted"],
            rows,
            title=(
                f"Shard scaling vs SimMPI/CPU prediction (numeric mesh "
                f"{MESH}^3, block {BLOCK}, {os.cpu_count()} host cores; "
                f"JSON trajectory at {BENCH_JSON.name})"
            ),
        )

    save_report("shard_scaling", run_once(benchmark, run))
