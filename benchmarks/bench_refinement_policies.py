"""Refinement-policy characterization (the ISSUE 10 bench).

Runs the same numeric Burgers problem under every registered refinement
policy and reports the axes the paper uses for AMR overhead (Fig. 6 /
Section VIII): throughput (FOM), block population, ghost-exchange
traffic, and the remesh cost — the serial+kernel seconds spent in
``Refinement::Tag``, ``UpdateMeshBlockTree`` and
``RedistributeAndRefineMeshBlocks``.

The per-policy trajectory lands in ``BENCH_policies.json`` at the repo
root (the CI perf-trend contract), alongside the human table in the
report directory.  The ``block_budget`` row doubles as an acceptance
gate: its hard cap must hold, and the final population must land within
10% of the target.
"""

import json

from conftest import bench_json_path, bench_scale, run_once

from repro.api import (
    RunSpec,
    Simulation,
    build_execution_config,
    build_simulation_params,
)
from repro.core.report import render_table
from repro.solver.initial_conditions import gaussian_blob

SCALE = bench_scale()
MESH = 32 if SCALE["quick"] else 64
BLOCK = 8
LEVELS = 2 if SCALE["quick"] else 3
NCYCLES = max(SCALE["ncycles"], 3)

#: Budget target: ~1.5x the base-grid population — enough headroom that
#: the budget row refines toward the target, low enough that the hard
#: cap binds below what the threshold criteria produce.
BASE_BLOCKS = (MESH // BLOCK) ** 2
BUDGET = 2 * BASE_BLOCKS - BASE_BLOCKS // 2

REMESH_REGIONS = (
    "Refinement::Tag",
    "UpdateMeshBlockTree",
    "RedistributeAndRefineMeshBlocks",
)

BENCH_JSON = bench_json_path("policies")


def _blob(mesh, pkg):
    gaussian_blob(mesh, pkg, amplitude=0.8, width=0.15)


def _spec(policy: str, budget: int = 0) -> RunSpec:
    params = build_simulation_params(
        ndim=2,
        mesh_size=MESH,
        block_size=BLOCK,
        num_levels=LEVELS,
        num_scalars=1,
        refinement_policy=policy,
        block_budget=budget,
    )
    config = build_execution_config(
        mode="numeric", kernel_mode="packed", num_gpus=1, ranks_per_gpu=1
    )
    return RunSpec(
        params=params,
        config=config,
        ncycles=NCYCLES,
        warmup=SCALE["warmup"],
        label=f"policy={policy}" + (f"@{budget}" if budget else ""),
    )


def _remesh_seconds(result) -> float:
    total = 0.0
    for region in REMESH_REGIONS:
        serial, kernel = result.function_breakdown.get(region, (0.0, 0.0))
        total += serial + kernel
    return total


def test_refinement_policy_characterization(benchmark, save_report):
    points = [
        ("first_derivative", 0),
        ("second_derivative", 0),
        ("recovered_gradient", 0),
        ("block_budget", BUDGET),
    ]

    def run():
        entries = []
        rows = []
        for policy, budget in points:
            result = Simulation(
                _spec(policy, budget), initial_conditions=_blob
            ).run()
            remesh_s = _remesh_seconds(result)
            entries.append(
                {
                    "policy": policy,
                    "block_budget": budget or None,
                    "fom": result.fom,
                    "final_blocks": result.final_blocks,
                    "max_blocks": result.max_blocks,
                    "cells_communicated": result.cells_communicated,
                    "remesh_seconds": remesh_s,
                    "wall_seconds": result.wall_seconds,
                }
            )
            if policy == "block_budget":
                assert result.max_blocks <= budget, (
                    f"budget cap exceeded: {result.max_blocks} > {budget}"
                )
                assert result.final_blocks >= 0.9 * budget, (
                    f"budget stalled: {result.final_blocks} of {budget}"
                )
            rows.append(
                [
                    policy + (f" (target {budget})" if budget else ""),
                    f"{result.fom:.3e}",
                    result.final_blocks,
                    result.max_blocks,
                    f"{result.cells_communicated:.3e}",
                    f"{remesh_s:.4f}",
                ]
            )
        assert len(entries) >= 3, "need at least three policies in the sweep"
        doc = {
            "schema": "repro.bench_policies",
            "schema_version": 1,
            "scale": "quick" if SCALE["quick"] else "paper",
            "ndim": 2,
            "mesh": MESH,
            "block": BLOCK,
            "levels": LEVELS,
            "ncycles": NCYCLES,
            "remesh_regions": list(REMESH_REGIONS),
            "entries": entries,
        }
        BENCH_JSON.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        return render_table(
            ["policy", "FOM", "blocks", "max blocks", "ghost cells",
             "remesh s"],
            rows,
            title=(
                f"Refinement-policy characterization (numeric 2D mesh "
                f"{MESH}, block {BLOCK}, {LEVELS} levels; JSON trajectory "
                f"at {BENCH_JSON.name})"
            ),
        )

    save_report("refinement_policies", run_once(benchmark, run))
