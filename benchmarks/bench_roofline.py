"""Roofline placement of the Table III kernels (Section VII-A).

The H100's machine balance is ~10.1 FLOPs/byte (34 TFLOP/s over 3.35 TB/s);
every VIBE kernel sits below it — all memory-bound — yet achieves a small
fraction of peak bandwidth because of sparse block-local access patterns.
"""

from conftest import run_once

from repro.core.report import render_table
from repro.hardware.roofline import roofline_point
from repro.hardware.specs import H100_SXM
from repro.kokkos.kernel import KERNEL_PROFILES


def test_roofline_positions(benchmark, save_report):
    def run():
        rows = []
        for name, p in sorted(KERNEL_PROFILES.items()):
            if name == "CalculateFluxes3D":
                continue  # the ablation variant
            pt = roofline_point(H100_SXM, p.arithmetic_intensity)
            rows.append(
                [
                    name,
                    f"{p.arithmetic_intensity:.2f}",
                    "memory" if pt.memory_bound else "compute",
                    f"{pt.attainable_fraction_of_peak(H100_SXM.peak_fp64_flops) * 100:.1f}%",
                ]
            )
        rows.append(
            [
                "H100 balance",
                f"{H100_SXM.operational_intensity:.1f}",
                "(paper: 10.1)",
                "",
            ]
        )
        return render_table(
            ["kernel", "FLOPs/byte", "bound by", "attainable FP64 (% peak)"],
            rows,
            title="Roofline placement of the VIBE kernels on the H100",
        )

    save_report("roofline", run_once(benchmark, run))
