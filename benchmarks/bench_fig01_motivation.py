"""Fig. 1: the motivation figure.

(a) smaller mesh blocks reduce processed cells (paper: block 16 processes
    2.9x fewer cells than block 32 at mesh 128, 3 levels);
(b) H100 FOM vs 96-core Sapphire Rapids across block sizes — the GPU
    matches or trails the CPU at block 16 and below;
(c) GPU utilization drops sharply with smaller mesh blocks.
"""

from conftest import bench_scale, run_once

from repro.api import RunSpec, Simulation
from repro.core.characterize import kernel_fraction
from repro.core.report import render_table
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128
BLOCKS = (8, 16, 32)

GPU_1R = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)
GPU_BEST = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=12)
CPU_96 = ExecutionConfig(backend="cpu", cpu_ranks=96)


def _params(block):
    return SimulationParams(mesh_size=MESH, block_size=block, num_levels=3)


def test_fig1a_cells_processed(benchmark, save_report, scale):
    def run():
        rows = []
        per_cycle = {}
        for block in BLOCKS:
            r = Simulation(RunSpec(params=_params(block), config=GPU_1R, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
            per_cycle[block] = r.cell_updates / r.cycles
            rows.append([block, f"{per_cycle[block]:.3e}", r.final_blocks])
        ratio = per_cycle[32] / per_cycle[16]
        rows.append(
            ["32/16 ratio", f"{ratio:.2f}x fewer cells (paper: 2.9x)", ""]
        )
        return render_table(
            ["MeshBlockSize", "cells processed / cycle", "blocks"],
            rows,
            title=f"Fig 1(a): cell reduction from finer blocks (mesh {MESH}, 3 levels)",
        )

    save_report("fig01a_cells", run_once(benchmark, run))


def test_fig1b_gpu_vs_cpu(benchmark, save_report, scale):
    def run():
        rows = []
        for block in BLOCKS:
            p = _params(block)
            gpu = Simulation(RunSpec(params=p, config=GPU_BEST, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
            cpu = Simulation(RunSpec(params=p, config=CPU_96, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
            winner = "GPU" if gpu.fom > cpu.fom else "CPU"
            rows.append(
                [
                    block,
                    f"{gpu.fom:.3e}",
                    f"{cpu.fom:.3e}",
                    f"{gpu.fom / cpu.fom:.2f}",
                    winner,
                ]
            )
        return render_table(
            ["MeshBlockSize", "H100 BestR FOM", "96-core SPR FOM", "GPU/CPU", "winner"],
            rows,
            title=(
                "Fig 1(b): H100 vs Sapphire Rapids across block sizes "
                "(paper: GPU matches or trails CPU at block <= 16)"
            ),
        )

    save_report("fig01b_gpu_vs_cpu", run_once(benchmark, run))


def test_fig1c_gpu_utilization(benchmark, save_report, scale):
    def run():
        rows = []
        for block in BLOCKS:
            r = Simulation(RunSpec(params=_params(block), config=GPU_1R, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
            rows.append([block, f"{kernel_fraction(r) * 100:.1f}"])
        return render_table(
            ["MeshBlockSize", "GPU busy fraction (%)"],
            rows,
            title=(
                "Fig 1(c): GPU utilization vs block size "
                "(paper: drops sharply below block 32)"
            ),
        )

    save_report("fig01c_gpu_util", run_once(benchmark, run))
