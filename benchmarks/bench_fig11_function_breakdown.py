"""Fig. 11: runtime share of the timestep loop's key functions.

Mesh 128, block 8, 3 levels, across GPU {1,6,8}R and CPU {16,48,96}R.
Paper: low-rank GPU runs are dominated by RedistributeAndRefineMeshBlocks,
SendBoundBufs and SetBounds (Redistribute falls from >1100 s at 1R to
263 s at 8R); CPU runs are balanced, with CalculateFluxes/WeightedSumData
dominating at 16 ranks and shrinking with core count.
"""

from conftest import bench_scale, run_once

from repro.api import RunSpec, Simulation
from repro.core.report import render_table
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128

CONFIGS = [
    ("GPU-1R", ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)),
    ("GPU-6R", ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=6)),
    ("GPU-8R", ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=8)),
    ("CPU-16R", ExecutionConfig(backend="cpu", cpu_ranks=16)),
    ("CPU-48R", ExecutionConfig(backend="cpu", cpu_ranks=48)),
    ("CPU-96R", ExecutionConfig(backend="cpu", cpu_ranks=96)),
]

FUNCTIONS = [
    "RedistributeAndRefineMeshBlocks",
    "SendBoundBufs",
    "SetBounds",
    "ReceiveBoundBufs",
    "CalculateFluxes",
    "WeightedSumData",
    "FluxDivergence",
    "Refinement::Tag",
    "UpdateMeshBlockTree",
    "EstimateTimeStep",
]


def test_fig11_function_shares(benchmark, save_report, scale):
    base = SimulationParams(mesh_size=MESH, block_size=8, num_levels=3)

    def run():
        results = {
            name: Simulation(RunSpec(params=base, config=cfg, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
            for name, cfg in CONFIGS
        }
        headers = ["function"] + [name for name, _ in CONFIGS]
        rows = []
        for fn in FUNCTIONS:
            row = [fn]
            for name, _ in CONFIGS:
                r = results[name]
                serial, kernel = r.function_breakdown.get(fn, (0.0, 0.0))
                share = 100.0 * (serial + kernel) / r.wall_seconds
                row.append(f"{share:.1f}%")
            rows.append(row)
        rows.append(
            ["TOTAL seconds"]
            + [f"{results[name].wall_seconds:.2f}" for name, _ in CONFIGS]
        )
        rows.append(
            ["Redistribute seconds"]
            + [
                f"{sum(results[name].function_breakdown.get(FUNCTIONS[0], (0, 0))):.2f}"
                for name, _ in CONFIGS
            ]
        )
        return render_table(
            headers,
            rows,
            title=(
                f"Fig 11: runtime share by function (mesh {MESH}, block 8, "
                "3 levels; paper: Redistribute dominates GPU-1R, drops "
                ">4x by 8R)"
            ),
        )

    save_report("fig11_function_breakdown", run_once(benchmark, run))
