"""Ablations for Section VIII's optimization recommendations.

Each recommendation toggled in isolation on the GPU-1R workload, measuring
FOM speedup, serial-time reduction, and device-memory reduction — the
design-choice studies called out in DESIGN.md.
"""

from conftest import bench_scale, run_once

from repro.core.optimizations import run_ablations
from repro.core.report import render_table
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128
GPU_1R = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)


def test_ablations_gpu_1r(benchmark, save_report, scale):
    def run():
        params = SimulationParams(
            mesh_size=MESH, block_size=8, num_levels=3, wavefront_speed=0.03
        )
        rows_out = []
        rows = run_ablations(params, GPU_1R, ncycles=scale["ncycles"])
        for row in rows:
            rows_out.append(
                [
                    row.name,
                    f"{row.fom_speedup:.3f}x",
                    f"{row.serial_reduction * 100:.1f}%",
                    f"{row.memory_reduction_bytes / 2**30:.2f}",
                ]
            )
        return render_table(
            ["optimization", "FOM speedup", "serial reduction", "memory saved GiB"],
            rows_out,
            title=(
                f"Section VIII ablations (mesh {MESH}, block 8, 3 levels, "
                "GPU-1R): each recommendation in isolation and combined"
            ),
        )

    save_report("ablations", run_once(benchmark, run))


def test_ablation_restructured_enables_more_ranks(benchmark, save_report, scale):
    """The paper's point: freeing aux memory lets more ranks fit per GPU."""

    def run():
        from dataclasses import replace

        from repro.core.sweeps import gpu_rank_sweep
        from repro.driver.execution import OptimizationFlags

        params = SimulationParams(mesh_size=MESH, block_size=8, num_levels=3)
        ranks = (8, 12, 16, 24) if not SCALE["quick"] else (4, 8)
        rows = []
        for label, flags in (
            ("baseline", OptimizationFlags()),
            ("restructured", OptimizationFlags(restructured_kernels=True)),
        ):
            max_ok = 0
            for r in ranks:
                config = ExecutionConfig(
                    backend="gpu",
                    num_gpus=1,
                    ranks_per_gpu=r,
                    optimizations=flags,
                )
                from repro.api import RunSpec, Simulation

                res = Simulation(RunSpec(params=params, config=config, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
                if not res.oom:
                    max_ok = r
            rows.append([label, max_ok])
        return render_table(
            ["variant", "max ranks/GPU without OOM"],
            rows,
            title=(
                "Section VIII-B ablation: kernel restructuring frees memory "
                "for more ranks per GPU"
            ),
        )

    save_report("ablation_ranks", run_once(benchmark, run))
