"""Fig. 12: per-function serial vs kernel split across configurations.

Mesh 128, block 8, 3 levels.  Paper: at 1 GPU rank every function shows a
large gap between its serial (host) and kernel (device) time; raising ranks
closes the gap; CPU runs are kernel-dominated per function.
"""

from conftest import bench_scale, run_once

from repro.api import RunSpec, Simulation
from repro.core.report import render_table
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128

CONFIGS = [
    ("GPU-1R", ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)),
    ("GPU-8R", ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=8)),
    ("CPU-48R", ExecutionConfig(backend="cpu", cpu_ranks=48)),
]

FUNCTIONS = [
    "CalculateFluxes",
    "SendBoundBufs",
    "SetBounds",
    "RedistributeAndRefineMeshBlocks",
    "Refinement::Tag",
    "EstimateTimeStep",
]


def test_fig12_serial_vs_kernel_by_function(benchmark, save_report, scale):
    base = SimulationParams(mesh_size=MESH, block_size=8, num_levels=3)

    def run():
        results = {
            name: Simulation(RunSpec(params=base, config=cfg, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
            for name, cfg in CONFIGS
        }
        headers = ["function"]
        for name, _ in CONFIGS:
            headers += [f"{name} serial_s", f"{name} kernel_s"]
        rows = []
        for fn in FUNCTIONS:
            row = [fn]
            for name, _ in CONFIGS:
                serial, kernel = results[name].function_breakdown.get(
                    fn, (0.0, 0.0)
                )
                row += [f"{serial:.4f}", f"{kernel:.4f}"]
            rows.append(row)
        return render_table(
            headers,
            rows,
            title=(
                f"Fig 12: per-function serial vs kernel time (mesh {MESH}, "
                "block 8, 3 levels; paper: GPU-1R serial >> kernel everywhere)"
            ),
        )

    save_report("fig12_function_split", run_once(benchmark, run))
