"""Packed vs per-block numeric kernel execution (the Fig. 1c mechanism).

The paper attributes the GPU's collapse at small MeshBlock sizes to per-block
kernel-launch overhead, which Parthenon's MeshBlockPack amortizes by sweeping
every block from one dispatch (Section II-C).  The numeric mode reproduces
that mechanism in Python: per-block kernels pay interpreter and NumPy
dispatch overhead once per block, the packed engine once per pack.  This
benchmark measures the real wall-clock effect on the CalculateFluxes stage
(reconstruction + Riemann — the paper's hottest kernel) across the Fig. 5
block-size sweep, and verifies the two paths agree numerically.

Acceptance: >= 2x speedup at block size 16^3 at paper scale.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import bench_scale, run_once

from repro.comm.bvals import BoundaryExchange
from repro.comm.mpi import SimMPI
from repro.core.report import render_table
from repro.driver.params import SimulationParams
from repro.mesh.mesh import Mesh
from repro.solver.burgers import (
    BASE,
    BurgersPackage,
    CONSERVED,
    DERIVED,
    PackedBurgersKernels,
)
from repro.solver.initial_conditions import gaussian_blob
from repro.solver.packs import build_numeric_pack

SCALE = bench_scale()
MESH = 32
BLOCK_SIZES = (8, 16, 32)
REPS = 3 if SCALE["quick"] else 9
#: Required flux-stage speedup at block 16 (relaxed at quick scale, where the
#: tiny rep count makes timings noisy).
MIN_SPEEDUP_B16 = 1.2 if SCALE["quick"] else 2.0


def _setup(block_size: int):
    """A ghost-filled single-level mesh with the seed example's blob ICs."""
    params = SimulationParams(
        ndim=3,
        mesh_size=MESH,
        block_size=block_size,
        num_levels=1,
        num_scalars=8,
    )
    pkg = BurgersPackage(params.ndim, params.burgers_config())
    mesh = Mesh(params.geometry(), pkg.field_specs(), allocate=True)
    gaussian_blob(mesh, pkg, amplitude=0.8, width=0.15)
    bx = BoundaryExchange(mesh, SimMPI(1))
    bx.exchange([CONSERVED])
    return mesh, pkg


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _measure(block_size: int):
    """(per_block_s, packed_s, worst flux deviation) for one block size."""
    mesh, pkg = _setup(block_size)

    def per_block():
        for blk in mesh.block_list:
            pkg.calculate_fluxes(blk)

    per_block()  # warm caches and per-block flux allocations
    t_per_block = _timed(per_block)
    reference = [
        [np.array(f) for f in blk.fluxes[CONSERVED] if f is not None]
        for blk in mesh.block_list
    ]

    pack = build_numeric_pack(
        mesh, (CONSERVED, BASE, DERIVED), flux_field=CONSERVED
    )
    engine = PackedBurgersKernels(pkg)

    def packed():
        engine.calculate_fluxes(pack)

    packed()  # warm scratch allocations
    t_packed = _timed(packed)
    # Interleave the remaining reps so clock drift and background noise hit
    # both paths symmetrically; keep the per-path minimum.
    for _ in range(REPS - 1):
        t_per_block = min(t_per_block, _timed(per_block))
        t_packed = min(t_packed, _timed(packed))
    worst = 0.0
    for b, blk in enumerate(mesh.block_list):
        for ref, got in zip(reference[b], blk.fluxes[CONSERVED]):
            worst = max(worst, float(np.max(np.abs(ref - got))))
    return t_per_block, t_packed, worst


def test_packed_flux_speedup(benchmark, save_report):
    def run():
        rows = []
        speedups = {}
        for block in BLOCK_SIZES:
            t_pb, t_pk, dev = _measure(block)
            nblocks = (MESH // block) ** 3
            speedups[block] = t_pb / t_pk
            rows.append(
                [
                    block,
                    nblocks,
                    f"{t_pb * 1e3:.2f}",
                    f"{t_pk * 1e3:.2f}",
                    f"{speedups[block]:.2f}x",
                    f"{dev:.1e}",
                ]
            )
            assert dev < 1e-12, (
                f"packed fluxes diverge from per-block at block {block}: {dev}"
            )
        assert speedups[16] >= MIN_SPEEDUP_B16, (
            f"packed CalculateFluxes speedup at 16^3 is {speedups[16]:.2f}x, "
            f"need >= {MIN_SPEEDUP_B16}x"
        )
        return render_table(
            ["block", "nblocks", "per_block_ms", "packed_ms", "speedup", "max_dev"],
            rows,
            title=(
                f"Packed vs per-block CalculateFluxes (mesh {MESH}^3, "
                "numeric, min of "
                f"{REPS} reps; launch amortization per Section II-C)"
            ),
        )

    save_report("packed_kernels", run_once(benchmark, run))
