"""Packed vs per-block numeric kernel execution (the Fig. 1c mechanism),
now swept across every available kernel backend.

The paper attributes the GPU's collapse at small MeshBlock sizes to per-block
kernel-launch overhead, which Parthenon's MeshBlockPack amortizes by sweeping
every block from one dispatch (Section II-C).  The numeric mode reproduces
that mechanism in Python: per-block kernels pay interpreter and NumPy
dispatch overhead once per block, the packed engine once per pack.  This
benchmark measures the real wall-clock effect on the CalculateFluxes stage
(reconstruction + Riemann — the paper's hottest kernel) across the Fig. 5
block-size sweep, verifies every engine agrees numerically, and emits the
machine-readable ``BENCH_kernels.json`` perf-trajectory file at the repo
root: one entry per (engine, block size) with the flux-stage time, the
speedup against the packed numpy reference, and the cell throughput.

Backends whose runtime dependency is missing are listed in the JSON as
unavailable but not timed (the unjitted numba loops would measure the
Python interpreter, not the engine).

Acceptance: >= 2x packed-vs-per-block speedup at block size 16^3 at paper
scale, and — when numba is importable — >= 5x numba-vs-packed-numpy
flux-stage speedup at block size 32^3.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from conftest import bench_json_path, bench_scale, run_once

from repro.comm.bvals import BoundaryExchange
from repro.comm.mpi import SimMPI
from repro.core.report import render_table
from repro.driver.params import SimulationParams
from repro.kernels.backends import (
    available_backends,
    backend_names,
    get_backend,
)
from repro.mesh.mesh import Mesh
from repro.solver.burgers import BASE, BurgersPackage, CONSERVED, DERIVED
from repro.solver.initial_conditions import gaussian_blob
from repro.solver.packs import build_numeric_pack

SCALE = bench_scale()
MESH = 32
BLOCK_SIZES = (8, 16, 32)
REPS = 3 if SCALE["quick"] else 9
#: Required flux-stage speedup at block 16 (relaxed at quick scale, where the
#: tiny rep count makes timings noisy).
MIN_SPEEDUP_B16 = 1.2 if SCALE["quick"] else 2.0
#: Required numba-over-numpy flux-stage speedup at block 32 (single-block
#: pack: pure kernel arithmetic, no pack-traversal overhead in either path).
#: Tightened from 5.0 when the sweep went direct-strided — dropping the
#: moveaxis staging copies removed the stage's remaining memcpy traffic.
MIN_NUMBA_SPEEDUP_B32 = 6.0

BENCH_JSON = bench_json_path("kernels")


def _setup(block_size: int):
    """A ghost-filled single-level mesh with the seed example's blob ICs."""
    params = SimulationParams(
        ndim=3,
        mesh_size=MESH,
        block_size=block_size,
        num_levels=1,
        num_scalars=8,
    )
    pkg = BurgersPackage(params.ndim, params.burgers_config())
    mesh = Mesh(params.geometry(), pkg.field_specs(), allocate=True)
    gaussian_blob(mesh, pkg, amplitude=0.8, width=0.15)
    bx = BoundaryExchange(mesh, SimMPI(1))
    bx.exchange([CONSERVED])
    return mesh, pkg


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _measure(block_size: int):
    """Flux-stage times for one block size.

    Returns ``(times, worst)``: ``times`` maps ``per_block`` and every
    available backend name to its best-of-REPS flux-stage seconds;
    ``worst`` is the worst per-engine flux deviation from the per-block
    reference.
    """
    mesh, pkg = _setup(block_size)

    def per_block():
        for blk in mesh.block_list:
            pkg.calculate_fluxes(blk)

    per_block()  # warm caches and per-block flux allocations
    reference = [
        [np.array(f) for f in blk.fluxes[CONSERVED] if f is not None]
        for blk in mesh.block_list
    ]

    pack = build_numeric_pack(
        mesh, (CONSERVED, BASE, DERIVED), flux_field=CONSERVED
    )
    engines = {
        name: get_backend(name).create_kernels(pkg)
        for name in available_backends()
    }

    def packed(engine):
        return lambda: engine.calculate_fluxes(pack)

    worst = 0.0
    runners = {"per_block": per_block}
    runners.update({name: packed(eng) for name, eng in engines.items()})
    times = {}
    for name, fn in runners.items():
        fn()  # warm scratch allocations (and the numba JIT compile)
        times[name] = _timed(fn)
        if name != "per_block":
            # Block flux views alias the pack flux storage the engine
            # just wrote, so the per-block reference checks every engine.
            for b, blk in enumerate(mesh.block_list):
                for ref, got in zip(reference[b], blk.fluxes[CONSERVED]):
                    worst = max(worst, float(np.max(np.abs(ref - got))))
    # Interleave the remaining reps so clock drift and background noise hit
    # every path symmetrically; keep the per-path minimum.
    for _ in range(REPS - 1):
        for name, fn in runners.items():
            times[name] = min(times[name], _timed(fn))
    return times, worst


def _write_bench_json(entries: list) -> None:
    doc = {
        "schema": "repro.bench_kernels",
        "schema_version": 1,
        "scale": "quick" if SCALE["quick"] else "paper",
        "mesh": MESH,
        "ndim": 3,
        "reps": REPS,
        "timing": "min over reps of one CalculateFluxes sweep (seconds)",
        "backends": {
            name: name in available_backends() for name in backend_names()
        },
        "entries": entries,
    }
    BENCH_JSON.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")


def test_packed_flux_speedup(benchmark, save_report):
    def run():
        rows = []
        entries = []
        speedups = {}  # packed numpy over per_block, per block size
        numba_speedups = {}  # numba over packed numpy, per block size
        for block in BLOCK_SIZES:
            times, dev = _measure(block)
            assert dev < 1e-12, (
                f"packed fluxes diverge from per-block at block {block}: {dev}"
            )
            nblocks = (MESH // block) ** 3
            cells = MESH**3  # interior zones swept per flux call
            t_ref = times["numpy"]
            speedups[block] = times["per_block"] / t_ref
            if "numba" in times:
                numba_speedups[block] = t_ref / times["numba"]
            for name, seconds in times.items():
                entries.append(
                    {
                        "engine": name,
                        "kernel_mode": (
                            "per_block" if name == "per_block" else "packed"
                        ),
                        "block_size": block,
                        "nblocks": nblocks,
                        "seconds": seconds,
                        "speedup_vs_packed_numpy": t_ref / seconds,
                        "cells_per_s": cells / seconds,
                        "max_flux_deviation": dev,
                    }
                )
                rows.append(
                    [
                        block,
                        name,
                        f"{seconds * 1e3:.2f}",
                        f"{t_ref / seconds:.2f}x",
                        f"{cells / seconds:.3e}",
                    ]
                )
        _write_bench_json(entries)
        assert speedups[16] >= MIN_SPEEDUP_B16, (
            f"packed CalculateFluxes speedup at 16^3 is {speedups[16]:.2f}x, "
            f"need >= {MIN_SPEEDUP_B16}x"
        )
        if "numba" in available_backends() and not SCALE["quick"]:
            assert numba_speedups[32] >= MIN_NUMBA_SPEEDUP_B32, (
                f"numba flux-stage speedup at 32^3 is "
                f"{numba_speedups[32]:.2f}x over packed numpy, "
                f"need >= {MIN_NUMBA_SPEEDUP_B32}x"
            )
        return render_table(
            ["block", "engine", "flux_ms", "vs_packed_numpy", "cells_per_s"],
            rows,
            title=(
                f"CalculateFluxes by engine (mesh {MESH}^3, numeric, min of "
                f"{REPS} reps; launch amortization per Section II-C; "
                f"JSON trajectory at {BENCH_JSON.name})"
            ),
        )

    save_report("packed_kernels", run_once(benchmark, run))
