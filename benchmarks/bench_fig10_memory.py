"""Fig. 10: GPU device memory breakdown vs rank count.

Mesh 128, block 8, 3 levels.  Paper: Kokkos-managed allocations (mesh +
auxiliary buffers) are a large, nearly constant fraction; MPI communication
buffers + the Open MPI driver (with its IPC-cache leak) drive the growth
with ranks; 12 ranks reach 75.5 GB, close to the 80 GB HBM capacity.
"""

from conftest import bench_scale, run_once

from repro.api import RunSpec, Simulation
from repro.core.report import render_table
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128
RANKS = (1, 6, 12) if SCALE["quick"] else (1, 6, 8, 12, 16)


def test_fig10_memory_breakdown(benchmark, save_report, scale):
    base = SimulationParams(mesh_size=MESH, block_size=8, num_levels=3)

    def run():
        rows = []
        for ranks in RANKS:
            config = ExecutionConfig(
                backend="gpu", num_gpus=1, ranks_per_gpu=ranks
            )
            r = Simulation(RunSpec(params=base, config=config, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
            m = r.memory_breakdown
            kokkos = (m["kokkos_mesh"] + m["kokkos_aux"]) / 2**30
            mpi = (m["mpi_buffers"] + m["mpi_driver"]) / 2**30
            rows.append(
                [
                    ranks,
                    f"{kokkos:.1f}",
                    f"{mpi:.1f}",
                    f"{r.device_memory_peak / 2**30:.1f}",
                    "OOM" if r.oom else "",
                ]
            )
        return render_table(
            ["ranks/GPU", "Kokkos GiB", "MPI bufs+driver GiB", "total GiB", ""],
            rows,
            title=(
                f"Fig 10: device memory by source vs ranks (mesh {MESH}, "
                "block 8, 3 levels; paper: Kokkos ~constant, MPI grows, "
                "12R ~ 75.5 GB of 80 GB HBM)"
            ),
        )

    save_report("fig10_memory", run_once(benchmark, run))
