"""Fig. 5: performance vs MeshBlockSize (mesh 128, 3 AMR levels).

Paper takeaways: both CPU and GPU decline as blocks shrink, but the GPU far
more steeply; 32 -> 16 grows communicated cells 2.1x while cell updates fall
5.0x (comm/comp ratio up 10.9x); at block 16 one GPU is slower than the
96-core CPU, and at block 8 even 4 GPUs lose to the CPU.  GPU 1R total time
grows 97.63 s (B32) -> 257.21 s (B16) -> 3023 s (B8), i.e. 2.6x then 11.8x.
"""

from conftest import bench_scale, run_once

from repro.api import RunSpec, Simulation
from repro.core.characterize import comm_to_comp_ratio
from repro.core.report import render_sweep, render_table
from repro.core.sweeps import block_size_sweep
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128

CONFIGS = {
    "GPU1-1R": ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1),
    "GPU1-BestR": ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=12),
    "GPU4-BestR": ExecutionConfig(backend="gpu", num_gpus=4, ranks_per_gpu=12),
    "GPU8-BestR": ExecutionConfig(backend="gpu", num_gpus=8, ranks_per_gpu=12),
    "CPU-96R": ExecutionConfig(backend="cpu", cpu_ranks=96),
}


def test_fig5_block_size_sweep(benchmark, save_report, scale):
    base = SimulationParams(mesh_size=MESH, num_levels=3)

    def run():
        series = block_size_sweep(
            base, CONFIGS, block_sizes=(8, 16, 32), ncycles=scale["ncycles"]
        )
        return render_sweep(
            series,
            "block size",
            title=(
                f"Fig 5: FOM vs MeshBlockSize (mesh {MESH}, 3 levels; "
                "paper: GPU declines far more steeply than CPU)"
            ),
        )

    save_report("fig05_block_size", run_once(benchmark, run))


def test_fig5_comm_comp_ratios(benchmark, save_report, scale):
    """Section IV-B's quoted 32 -> 16 factors and per-size run times."""

    def run():
        gpu = CONFIGS["GPU1-1R"]
        results = {}
        for block in (8, 16, 32):
            results[block] = Simulation(RunSpec(params=SimulationParams(mesh_size=MESH, block_size=block, num_levels=3), config=gpu, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
        r32, r16, r8 = results[32], results[16], results[8]
        comm_growth = r16.cells_communicated / r32.cells_communicated
        update_drop = r32.cell_updates / r16.cell_updates
        ratio_growth = comm_to_comp_ratio(r16) / comm_to_comp_ratio(r32)
        rows = [
            ["communicated cells 32->16", f"{comm_growth:.2f}x", "2.1x"],
            ["cell updates 32->16", f"1/{update_drop:.2f}", "1/5.0"],
            ["comm/comp ratio 32->16", f"{ratio_growth:.1f}x", "10.9x"],
            [
                "GPU-1R time growth 32->16",
                f"{r16.wall_seconds / r32.wall_seconds:.2f}x",
                "2.6x (97.63 -> 257.21 s)",
            ],
            [
                "GPU-1R time growth 16->8",
                f"{r8.wall_seconds / r16.wall_seconds:.2f}x",
                "11.8x (257.21 -> 3023 s)",
            ],
        ]
        return render_table(
            ["quantity", "measured", "paper"],
            rows,
            title=f"Section IV-B: block-size factors (mesh {MESH}, 3 levels)",
        )

    save_report("fig05_factors", run_once(benchmark, run))
