"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures as a
plain-text report: printed to stdout (visible with ``pytest -s``) and saved
under a single output directory so the artifacts survive the run.

That directory is governed by one knob — the ``--output-dir`` pytest flag
(default ``benchmarks/output``, with ``REPRO_BENCH_OUTPUT_DIR`` as an
environment fallback for flagless CI invocations).  Every bench script
writes through the ``report_dir``/``save_report`` fixtures, so reports can
never scatter across per-invocation directories again.

Machine-readable ``BENCH_*.json`` perf-trajectory files are a separate
contract: CI and the trend tooling read them at the *repo root*, always —
``bench_json_path`` is the one place that path is spelled.

Scaling: ``REPRO_BENCH_SCALE=quick`` shrinks the workloads (smaller meshes,
fewer cycles) for smoke runs; the default ``paper`` scale uses the paper's
mesh/block/level parameters.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Default report directory when neither the ``--output-dir`` flag nor the
#: ``REPRO_BENCH_OUTPUT_DIR`` environment variable is set.
DEFAULT_OUTPUT_DIR = Path(__file__).parent / "output"

#: Repo root — where the ``BENCH_*.json`` perf-trajectory files live.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Measured cycles / warmup cycles per configuration.
PAPER_SCALE = {"ncycles": 3, "warmup": 2, "quick": False}
QUICK_SCALE = {"ncycles": 2, "warmup": 1, "quick": True}


def pytest_addoption(parser):
    parser.addoption(
        "--output-dir",
        action="store",
        default=None,
        help=(
            "Directory for benchmark text reports (default: "
            "benchmarks/output, or REPRO_BENCH_OUTPUT_DIR if set). "
            "Shared by every bench script."
        ),
    )


def resolve_output_dir(flag_value=None) -> Path:
    """The single output-dir resolution: flag > env > default."""
    if flag_value:
        return Path(flag_value)
    env = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    if env:
        return Path(env)
    return DEFAULT_OUTPUT_DIR


def bench_json_path(name: str) -> Path:
    """Repo-root path for a ``BENCH_<name>.json`` trajectory file."""
    return REPO_ROOT / f"BENCH_{name}.json"


def bench_scale() -> dict:
    if os.environ.get("REPRO_BENCH_SCALE", "paper") == "quick":
        return dict(QUICK_SCALE)
    return dict(PAPER_SCALE)


@pytest.fixture(scope="session")
def scale() -> dict:
    return bench_scale()


@pytest.fixture(scope="session")
def report_dir(request) -> Path:
    out = resolve_output_dir(request.config.getoption("--output-dir"))
    out.mkdir(parents=True, exist_ok=True)
    return out


@pytest.fixture
def save_report(report_dir):
    """Print a report block and persist it under the output dir."""

    def _save(name: str, text: str) -> None:
        print("\n" + text + "\n")
        (report_dir / f"{name}.txt").write_text(text + "\n")

    return _save


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These are simulation-replay benchmarks: repeated rounds would re-run
    multi-second platform simulations for no statistical benefit.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
