"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures as a
plain-text report: printed to stdout (visible with ``pytest -s``) and saved
under ``benchmarks/output/`` so the artifacts survive the run.

Scaling: ``REPRO_BENCH_SCALE=quick`` shrinks the workloads (smaller meshes,
fewer cycles) for smoke runs; the default ``paper`` scale uses the paper's
mesh/block/level parameters.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Reports land here; override with REPRO_BENCH_OUTPUT_DIR (e.g. to keep a
#: quick-scale smoke run from overwriting paper-scale artifacts).
OUTPUT_DIR = Path(
    os.environ.get(
        "REPRO_BENCH_OUTPUT_DIR", str(Path(__file__).parent / "output")
    )
)

#: Measured cycles / warmup cycles per configuration.
PAPER_SCALE = {"ncycles": 3, "warmup": 2, "quick": False}
QUICK_SCALE = {"ncycles": 2, "warmup": 1, "quick": True}


def bench_scale() -> dict:
    if os.environ.get("REPRO_BENCH_SCALE", "paper") == "quick":
        return dict(QUICK_SCALE)
    return dict(PAPER_SCALE)


@pytest.fixture(scope="session")
def scale() -> dict:
    return bench_scale()


@pytest.fixture(scope="session")
def report_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_report(report_dir):
    """Print a report block and persist it under benchmarks/output/."""

    def _save(name: str, text: str) -> None:
        print("\n" + text + "\n")
        (report_dir / f"{name}.txt").write_text(text + "\n")

    return _save


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These are simulation-replay benchmarks: repeated rounds would re-run
    multi-second platform simulations for no statistical benefit.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
