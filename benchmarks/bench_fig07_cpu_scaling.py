"""Fig. 7: CPU strong scaling (mesh 128, block 8, 3 levels).

Paper takeaways: total runtime falls near-ideally from 4 to 48 cores;
kernel time keeps scaling to 96; the serial portion shrinks to ~64 cores
then plateaus (irreducible overhead), with a minor uptick at 72-96 from
collective contention.
"""

from conftest import bench_scale, run_once

from repro.core.report import render_table
from repro.core.sweeps import cpu_rank_sweep
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128
RANKS = (4, 16, 48) if SCALE["quick"] else (4, 8, 16, 24, 32, 48, 64, 72, 96)


def test_fig7_cpu_strong_scaling(benchmark, save_report, scale):
    base = SimulationParams(mesh_size=MESH, block_size=8, num_levels=3)

    def run():
        points = cpu_rank_sweep(base, ranks=RANKS, ncycles=scale["ncycles"])
        rows = []
        t4 = points[0].result.wall_seconds
        for pt in points:
            r = pt.result
            ideal = t4 * RANKS[0] / pt.x
            rows.append(
                [
                    int(pt.x),
                    f"{r.wall_seconds:.3f}",
                    f"{r.kernel_seconds:.3f}",
                    f"{r.serial_seconds:.3f}",
                    f"{ideal:.3f}",
                    f"{r.fom:.3e}",
                ]
            )
        return render_table(
            ["cores", "total_s", "kernel_s", "serial_s", "ideal_total_s", "FOM"],
            rows,
            title=(
                f"Fig 7: CPU strong scaling, total/kernel/serial (mesh {MESH}, "
                "block 8, 3 levels; paper: near-ideal to 48, serial plateau >64)"
            ),
        )

    save_report("fig07_cpu_scaling", run_once(benchmark, run))
