"""Section VIII-A: the serial-bottleneck inventory.

Quantifies the host-side costs the paper's recommendations target: string
variable lookup, InitializeBufferCache sort+shuffle, RebuildBufferCache
(paper: ~13.3% of total runtime at 1 GPU-1 rank, mesh 128, block 16,
3 levels), and refinement tagging.
"""

from conftest import bench_scale, run_once

from repro.core.report import render_table
from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128
GPU_1R = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)


def test_sec8_rebuild_buffer_cache_share(benchmark, save_report, scale):
    def run():
        params = SimulationParams(mesh_size=MESH, block_size=16, num_levels=3)
        driver = ParthenonDriver(params, GPU_1R)
        r = driver.run(scale["ncycles"], warmup=scale["warmup"])
        share = 100.0 * r.rebuild_buffer_cache_seconds / r.wall_seconds
        rows = [
            ["RebuildBufferCache seconds", f"{r.rebuild_buffer_cache_seconds:.3f}"],
            ["total seconds", f"{r.wall_seconds:.3f}"],
            ["share of runtime", f"{share:.1f}% (paper: 13.3%)"],
        ]
        return render_table(
            ["quantity", "value"],
            rows,
            title=(
                f"Section VIII-A: RebuildBufferCache share at 1 GPU-1R "
                f"(mesh {MESH}, block 16, 3 levels)"
            ),
        )

    save_report("sec8_rebuild_share", run_once(benchmark, run))


def test_sec8_serial_cost_inventory(benchmark, save_report, scale):
    def run():
        params = SimulationParams(mesh_size=MESH, block_size=8, num_levels=3)
        driver = ParthenonDriver(params, GPU_1R)
        r = driver.run(scale["ncycles"], warmup=scale["warmup"])
        rows = []
        for fn in (
            "SendBoundBufs",
            "SetBounds",
            "ReceiveBoundBufs",
            "RedistributeAndRefineMeshBlocks",
            "Refinement::Tag",
            "UpdateMeshBlockTree",
        ):
            serial, _ = r.function_breakdown.get(fn, (0.0, 0.0))
            rows.append(
                [fn, f"{serial:.3f}", f"{100 * serial / r.serial_seconds:.1f}"]
            )
        return render_table(
            ["serial code path", "seconds", "% of serial"],
            rows,
            title=(
                f"Section VIII-A: serial-portion inventory at 1 GPU-1R "
                f"(mesh {MESH}, block 8, 3 levels)"
            ),
        )

    save_report("sec8_serial_inventory", run_once(benchmark, run))
