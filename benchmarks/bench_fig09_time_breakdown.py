"""Fig. 9: kernel vs serial execution-time breakdown.

Mesh 128, block 8, 3 levels.  Paper: the 1-rank GPU run spends ~2659 s in
the serial portion vs ~122 s in kernels (a 21.8:1 ratio); more ranks per
GPU shrink the serial share; CPU runs are far more balanced.
"""

from conftest import bench_scale, run_once

from repro.api import RunSpec, Simulation
from repro.core.report import render_table
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128

CONFIGS = [
    ("GPU-1R", ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)),
    ("GPU-6R", ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=6)),
    ("GPU-8R", ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=8)),
    ("GPU-12R", ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=12)),
    ("CPU-16R", ExecutionConfig(backend="cpu", cpu_ranks=16)),
    ("CPU-48R", ExecutionConfig(backend="cpu", cpu_ranks=48)),
    ("CPU-96R", ExecutionConfig(backend="cpu", cpu_ranks=96)),
]


def test_fig9_kernel_vs_serial(benchmark, save_report, scale):
    base = SimulationParams(mesh_size=MESH, block_size=8, num_levels=3)

    def run():
        rows = []
        for name, config in CONFIGS:
            r = Simulation(RunSpec(params=base, config=config, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
            ratio = r.serial_seconds / max(r.kernel_seconds, 1e-12)
            rows.append(
                [
                    name,
                    f"{r.wall_seconds:.3f}",
                    f"{r.kernel_seconds:.3f}",
                    f"{r.serial_seconds:.3f}",
                    f"{ratio:.1f}",
                ]
            )
        return render_table(
            ["config", "total_s", "kernel_s", "serial_s", "serial:kernel"],
            rows,
            title=(
                f"Fig 9: execution-time breakdown (mesh {MESH}, block 8, "
                "3 levels; paper GPU-1R serial:kernel ~ 2659:122 = 21.8)"
            ),
        )

    save_report("fig09_breakdown", run_once(benchmark, run))
