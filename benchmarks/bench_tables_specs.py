"""Tables I & II: the hardware specifications of the simulated platform."""

from conftest import run_once

from repro.core.report import render_table
from repro.hardware.specs import H100_SXM, SAPPHIRE_RAPIDS_8468


def test_table1_cpu_spec(benchmark, save_report):
    def build():
        cpu = SAPPHIRE_RAPIDS_8468
        rows = [
            ["Processor", cpu.name],
            ["Number of Cores", cpu.cores],
            ["Number of Sockets", cpu.sockets],
            ["Base Frequency", f"{cpu.base_ghz} GHz"],
            ["L1 Cache", f"{cpu.l1d_kb} KB (L1d) + {cpu.l1i_kb} KB (L1i) per core"],
            ["L2 Cache", f"{cpu.l2_kb_per_core // 1024} MB per core"],
            ["L3 Cache", f"{cpu.l3_mb_shared:.0f} MB shared"],
            ["Memory", f"{cpu.memory_gib / 1024:.1f} TiB DDR5"],
            ["Memory Bandwidth", f"{cpu.memory_bw_gbs} GB/s"],
            ["Peak FP64", f"{cpu.peak_fp64_gflops / 1000:.2f} TFLOP/s (derived)"],
        ]
        return render_table(
            ["Specification", "Details"], rows, title="TABLE I: CPU Specifications"
        )

    save_report("table1_cpu_spec", run_once(benchmark, build))


def test_table2_gpu_spec(benchmark, save_report):
    def build():
        gpu = H100_SXM
        rows = [
            ["GPU Model", gpu.name],
            ["Streaming Multiprocessors (SMs)", gpu.sms],
            ["Base Frequency", f"{gpu.base_ghz} GHz"],
            ["Global Memory", f"{gpu.memory_mib:,} MiB HBM3"],
            ["Memory Bandwidth", f"{gpu.memory_bw_tbs} TB/s"],
            ["L1 Cache + Scratchpad", f"{gpu.l1_scratch_kb} KB"],
            ["L2 Cache", f"{gpu.l2_mb} MB"],
            ["Peak FP64", f"{gpu.fp64_tflops} TFLOP/s"],
            [
                "Operational Intensity",
                f"{gpu.operational_intensity:.1f} FLOPs/byte (paper: 10.1)",
            ],
        ]
        return render_table(
            ["Specification", "Details"], rows, title="TABLE II: GPU Specifications"
        )

    save_report("table2_gpu_spec", run_once(benchmark, build))
