"""Section V: multi-node discussion (two nodes per platform).

Paper (1 rank/GPU, 1 rank/core): two-node speedup at mesh 128 / block 8 /
3 levels is 1.63x (CPU) vs 1.51x (GPU); at block 16, CPU 1.85x vs GPU 0.95x.
The block 32 -> 8 performance drop across two nodes is 5.88x (CPU) vs a
dramatic 90.77x (GPU).  Deeper AMR (1 -> 3 levels at mesh 256 / block 16)
costs two CPU nodes 1.22x but two GPU nodes 3.92x.
"""

from conftest import bench_scale, run_once

from repro.api import RunSpec, Simulation
from repro.core.report import render_table
from repro.core.sweeps import multinode_comparison
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

SCALE = bench_scale()
MESH = 64 if SCALE["quick"] else 128


def test_sec5_two_node_scaling(benchmark, save_report, scale):
    def run():
        rows = []
        for block, paper_cpu, paper_gpu in ((8, "1.63x", "1.51x"), (16, "1.85x", "0.95x")):
            base = SimulationParams(mesh_size=MESH, block_size=block, num_levels=3)
            series = multinode_comparison(base, nodes=(1, 2), ncycles=scale["ncycles"])
            cpu = series["CPU"]
            gpu = series["GPU"]
            rows.append(
                [
                    f"block {block}",
                    f"{cpu[1].fom / cpu[0].fom:.2f}x",
                    paper_cpu,
                    f"{gpu[1].fom / gpu[0].fom:.2f}x",
                    paper_gpu,
                ]
            )
        return render_table(
            ["config", "CPU 2-node speedup", "paper", "GPU 2-node speedup", "paper"],
            rows,
            title=(
                f"Section V: two-node scaling (mesh {MESH}, 3 levels; "
                "1 rank/GPU, 1 rank/core)"
            ),
        )

    save_report("sec5_two_node", run_once(benchmark, run))


def test_sec5_block_size_drop_two_nodes(benchmark, save_report, scale):
    def run():
        results = {}
        for name, config in (
            ("CPU", ExecutionConfig(backend="cpu", cpu_ranks=96, num_nodes=2)),
            (
                "GPU",
                ExecutionConfig(
                    backend="gpu", num_gpus=8, ranks_per_gpu=1, num_nodes=2
                ),
            ),
        ):
            for block in (8, 32):
                params = SimulationParams(
                    mesh_size=MESH, block_size=block, num_levels=3
                )
                results[(name, block)] = Simulation(RunSpec(params=params, config=config, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
        cpu_drop = results[("CPU", 32)].fom / results[("CPU", 8)].fom
        gpu_drop = results[("GPU", 32)].fom / results[("GPU", 8)].fom
        rows = [
            ["CPU (2 nodes)", f"{cpu_drop:.2f}x", "5.88x"],
            ["GPU (2 nodes)", f"{gpu_drop:.2f}x", "90.77x"],
            ["GPU drop / CPU drop", f"{gpu_drop / cpu_drop:.1f}x", "15.4x"],
        ]
        return render_table(
            ["platform", "block 32 -> 8 FOM drop", "paper"],
            rows,
            title=(
                f"Section V: block-size sensitivity across two nodes "
                f"(mesh {MESH}, 3 levels; paper: GPUs are far more vulnerable)"
            ),
        )

    save_report("sec5_block_drop", run_once(benchmark, run))


def test_sec5_level_drop_two_nodes(benchmark, save_report, scale):
    def run():
        mesh = 64 if SCALE["quick"] else 128  # paper uses 256; 128 keeps the
        # harness tractable — the GPUs-suffer-more conclusion is scale-free.
        results = {}
        for name, config in (
            ("CPU", ExecutionConfig(backend="cpu", cpu_ranks=96, num_nodes=2)),
            (
                "GPU",
                ExecutionConfig(
                    backend="gpu", num_gpus=8, ranks_per_gpu=1, num_nodes=2
                ),
            ),
        ):
            for lvl in (1, 3):
                params = SimulationParams(
                    mesh_size=mesh, block_size=16, num_levels=lvl
                )
                results[(name, lvl)] = Simulation(RunSpec(params=params, config=config, ncycles=scale["ncycles"], warmup=scale["warmup"])).run()
        cpu_drop = results[("CPU", 1)].fom / results[("CPU", 3)].fom
        gpu_drop = results[("GPU", 1)].fom / results[("GPU", 3)].fom
        rows = [
            ["CPU (2 nodes)", f"{cpu_drop:.2f}x", "1.22x"],
            ["GPU (2 nodes)", f"{gpu_drop:.2f}x", "3.92x"],
        ]
        return render_table(
            ["platform", "1 -> 3 level FOM drop", "paper (mesh 256)"],
            rows,
            title=f"Section V: AMR-depth sensitivity across two nodes (mesh {mesh}, block 16)",
        )

    save_report("sec5_level_drop", run_once(benchmark, run))
